package lint

// rules.go implements the six original taskdep API-misuse rules over
// go/ast + go/types. Type information is best-effort: imports resolve
// through a stub importer (no module loading, no new dependencies),
// which is enough for the rules here — they need object identity and
// scope for identifiers of the linted package, not cross-package
// signatures. The dep-coverage dataflow rules live in depcoverage.go.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isTaskdepPath reports whether path imports the taskdep module root
// (whose New() produces a runtime the use-after-close rule tracks).
func isTaskdepPath(path string) bool {
	return path == "taskdep" || path == "taskdep/internal/rt" ||
		strings.HasSuffix(path, "/taskdep")
}

// --- Spec literal helpers ---

// isSpecLit matches composite literals of type Spec / pkg.Spec.
func isSpecLit(lit *ast.CompositeLit) bool {
	switch t := lit.Type.(type) {
	case *ast.Ident:
		return t.Name == "Spec"
	case *ast.SelectorExpr:
		return t.Sel.Name == "Spec"
	}
	return false
}

// specFields returns the keyed fields of a Spec literal.
func specFields(lit *ast.CompositeLit) map[string]ast.Expr {
	out := map[string]ast.Expr{}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
		}
	}
	return out
}

// specIsDetached reports whether the literal statically declares
// Detached: true. A non-literal Detached value counts as detached
// (unknown: do not flag).
func specIsDetached(fields map[string]ast.Expr) bool {
	v, ok := fields["Detached"]
	if !ok {
		return false
	}
	if id, ok := v.(*ast.Ident); ok {
		return id.Name != "false"
	}
	return true // dynamic value: assume the author knows
}

// objOf resolves an identifier to its object (use or definition).
func (l *pkgLint) objOf(id *ast.Ident) types.Object {
	if o := l.info.Uses[id]; o != nil {
		return o
	}
	return l.info.Defs[id]
}

// varOf resolves an identifier to a *types.Var, nil otherwise.
func (l *pkgLint) varOf(id *ast.Ident) *types.Var {
	v, _ := l.objOf(id).(*types.Var)
	return v
}

// --- rule: loop-capture ---

// checkLoopCapture flags Body/DetachedBody closures that capture a
// variable mutated by an enclosing loop. Go 1.22 made loop-declared
// variables per-iteration, so the dangerous remainder is precisely a
// variable declared OUTSIDE the loop and assigned inside it: the task
// body runs concurrently with later iterations overwriting it.
func (l *pkgLint) checkLoopCapture(lit *ast.CompositeLit, stack []ast.Node) {
	if !l.on(RuleLoopCapture) {
		return
	}
	fields := specFields(lit)
	for _, name := range []string{"Body", "Do", "DetachedBody"} {
		fn, ok := fields[name].(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, obj := range l.capturedVars(fn) {
			for i := len(stack) - 1; i >= 0; i-- {
				loop := stack[i]
				switch loop.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
				default:
					continue
				}
				if obj.Pos() >= loop.Pos() && obj.Pos() < loop.End() {
					continue // declared inside the loop: per-iteration since Go 1.22
				}
				if l.mutatedIn(loop, obj, fn) {
					l.report(lit.Pos(), RuleLoopCapture,
						"task %s captures %q, which the enclosing loop mutates; the body runs concurrently with later iterations (copy it into a loop-local first)",
						name, obj.Name())
					break
				}
			}
		}
	}
}

// capturedVars lists the free variables of fn (identifiers resolving to
// variables declared outside the closure), deduplicated, in first-use
// order.
func (l *pkgLint) capturedVars(fn *ast.FuncLit) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := l.varOf(id)
		if v == nil || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() {
			return true // declared within the closure (params, locals)
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// mutatedIn reports whether obj is assigned anywhere in the loop node,
// excluding the submitted closure itself.
func (l *pkgLint) mutatedIn(loop ast.Node, obj *types.Var, exclude *ast.FuncLit) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found || n == exclude {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // := declares new objects, never mutates obj
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && l.varOf(id) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && l.varOf(id) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if s.Tok == token.ASSIGN {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if id, ok := e.(*ast.Ident); ok && l.varOf(id) == obj {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// --- rule: fused-capture ---

// checkFusedCapture flags Body/Do/DetachedBody closures that capture a
// loop-LOCAL variable the same iteration reassigns after the Spec is
// built. Per-iteration variables are immune to the classic loop-capture
// hazard, but a write that follows the Submit still races with the
// body: the runtime may execute it at any point after submission — and
// task fusion makes "immediately, inline on the finishing worker" a
// common schedule — so the closure observes either the pre- or
// post-write value nondeterministically. A batch-submitted Spec is no
// better off: there the body always sees the final value, which the
// capture-at-build-time shape suggests the author did not intend.
func (l *pkgLint) checkFusedCapture(lit *ast.CompositeLit, stack []ast.Node) {
	if !l.on(RuleFusedCapture) {
		return
	}
	fields := specFields(lit)
	for _, name := range []string{"Body", "Do", "DetachedBody"} {
		fn, ok := fields[name].(*ast.FuncLit)
		if !ok {
			continue
		}
		for _, obj := range l.capturedVars(fn) {
			for i := len(stack) - 1; i >= 0; i-- {
				loop := stack[i]
				switch loop.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
				default:
					continue
				}
				if obj.Pos() < loop.Pos() || obj.Pos() >= loop.End() {
					continue // declared outside: loop-capture territory
				}
				if l.mutatedAfter(loop, obj, lit.End(), fn) {
					l.report(lit.Pos(), RuleFusedCapture,
						"task %s captures loop-local %q, which the iteration reassigns after the Spec is built; the body may run (inline, when fused) before or after that write and observe either value — finish the writes first, or copy the value",
						name, obj.Name())
					break
				}
			}
		}
	}
}

// mutatedAfter reports whether obj is assigned at a source position
// after `after` within the loop node, excluding the submitted closure
// itself. Loop-header post statements (i++) sit before the body in
// source order, so a per-iteration index never trips this.
func (l *pkgLint) mutatedAfter(loop ast.Node, obj *types.Var, after token.Pos, exclude *ast.FuncLit) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found || n == exclude {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // := declares new objects, never mutates obj
			}
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && l.varOf(id) == obj && id.Pos() > after {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && l.varOf(id) == obj && id.Pos() > after {
				found = true
			}
		}
		return !found
	})
	return found
}

// --- rule: missing-out ---

// checkMissingOut flags a Spec whose Body writes package-level state
// while declaring no writer dependence: two such tasks (or the task and
// any reader) race with nothing ordering them.
//
// The rule is demoted to a fallback: when dep-coverage analyzed the
// same literal with adequate type information, its undeclared-write
// check subsumes this one (with symbolic index precision), so
// missing-out only fires for literals the effect analysis had to give
// up on.
func (l *pkgLint) checkMissingOut(lit *ast.CompositeLit) {
	if !l.on(RuleMissingOut) {
		return
	}
	if l.analyzed[lit] && l.on(RuleUndeclaredWrite) {
		return
	}
	fields := specFields(lit)
	fn, ok := fields["Body"].(*ast.FuncLit)
	if !ok {
		fn, ok = fields["Do"].(*ast.FuncLit)
	}
	if !ok {
		return
	}
	if fields["Out"] != nil || fields["InOut"] != nil || fields["InOutSet"] != nil {
		return
	}
	var flagged map[string]bool
	check := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		name := ""
		if pn, ok := l.objOf(root).(*types.PkgName); ok {
			// Write through a selector rooted at an imported package:
			// package-level state of another package.
			name = pn.Name() + ".…"
			if sel, ok := e.(*ast.SelectorExpr); ok {
				name = pn.Name() + "." + sel.Sel.Name
			}
		} else if v := l.varOf(root); v != nil && l.pkg != nil && v.Parent() == l.pkg.Scope() {
			name = v.Name()
		} else {
			return
		}
		if flagged[name] {
			return
		}
		if flagged == nil {
			flagged = map[string]bool{}
		}
		flagged[name] = true
		l.report(lit.Pos(), RuleMissingOut,
			"task body writes package-level %s but the Spec declares no Out/InOut/InOutSet keys — nothing orders this write against other tasks", name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range s.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(s.X)
		}
		return true
	})
}

// --- rule: dropped-error ---

// checkDroppedError flags a Do closure that discards a call result via
// a trailing blank assignment while every return statement (outside
// nested closures) is literally `return nil`: the error-returning form
// was chosen, but no failure can ever reach the runtime. The fix is to
// return the discarded error (so a failure poisons the task's cone) —
// or to use Body, the zero-overhead form for work that cannot fail.
func (l *pkgLint) checkDroppedError(lit *ast.CompositeLit) {
	if !l.on(RuleDroppedError) {
		return
	}
	fn, ok := specFields(lit)["Do"].(*ast.FuncLit)
	if !ok {
		return
	}
	alwaysNil := true
	discards := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // nested closures have their own error discipline
		case *ast.ReturnStmt:
			if len(s.Results) == 0 {
				// Naked return of a named result: value unknown, assume
				// the author threads errors through it.
				alwaysNil = false
				return true
			}
			for _, r := range s.Results {
				if id, isIdent := r.(*ast.Ident); !isIdent || id.Name != "nil" {
					alwaysNil = false
				}
			}
		case *ast.AssignStmt:
			// `_ = f()` and `v, _ := f()` both throw away f's trailing
			// result — for a multi-valued call, conventionally the error.
			if len(s.Rhs) != 1 {
				return true
			}
			if _, isCall := s.Rhs[0].(*ast.CallExpr); !isCall {
				return true
			}
			if id, isIdent := s.Lhs[len(s.Lhs)-1].(*ast.Ident); isIdent && id.Name == "_" {
				discards++
			}
		}
		return true
	})
	if alwaysNil && discards > 0 {
		l.report(lit.Pos(), RuleDroppedError,
			"Do body blank-discards a call result but every return is nil — the task can never fail; return the error so the failure poisons the cone, or use Body for work that cannot fail")
	}
}

// rootIdent unwraps index/selector/star/paren chains to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// --- sequential rules: use-after-close, fulfill-nil-event ---

// seqLint walks one function body in source order, tracking runtime
// variables (created by taskdep.New / rt.New), their Close calls, and
// variables holding the nil Event a non-detached Submit returns. Nested
// closures get their own close/event context (they execute at a
// different time) but share the runtime set.
func (l *pkgLint) seqLint(body *ast.BlockStmt, runtimes map[types.Object]bool) {
	if !l.on(RuleUseAfterClose) && !l.on(RuleFulfillNil) {
		return
	}
	closed := map[types.Object]token.Pos{}
	nilEv := map[types.Object]token.Pos{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			// defer rt.Close() is the idiom, and deferred calls run at
			// return: exclude the whole subtree from ordering checks.
			return false
		case *ast.FuncLit:
			l.seqLint(s.Body, runtimes)
			return false
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := l.objOf(id)
				if obj == nil {
					continue
				}
				// Any reassignment revives the variable.
				delete(closed, obj)
				delete(nilEv, obj)
				if len(s.Rhs) != len(s.Lhs) && len(s.Rhs) != 1 {
					continue
				}
				rhs := s.Rhs[0]
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				}
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				if l.isRuntimeNew(call) {
					runtimes[obj] = true
				}
				if l.isNonDetachedSubmit(call) {
					nilEv[obj] = s.Pos()
				}
			}
		case *ast.CallExpr:
			sel, ok := s.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Chained rt.Submit(Spec{...}).Fulfill().
			if sel.Sel.Name == "Fulfill" {
				if inner, ok := sel.X.(*ast.CallExpr); ok && l.isNonDetachedSubmit(inner) {
					l.report(s.Pos(), RuleFulfillNil,
						"Fulfill on the result of a non-detached Submit — Submit returns a nil *Event unless the Spec sets Detached: true")
					return true
				}
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := l.objOf(id); obj != nil {
						if _, bad := nilEv[obj]; bad {
							l.report(s.Pos(), RuleFulfillNil,
								"Fulfill on %q, which holds the nil *Event of a non-detached Submit (set Detached: true in the Spec)", id.Name)
						}
					}
				}
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			obj := l.objOf(id)
			if obj == nil || !runtimes[obj] {
				return true
			}
			switch sel.Sel.Name {
			case "Close":
				if _, already := closed[obj]; !already {
					closed[obj] = s.Pos()
				}
			case "Submit", "SubmitBatch", "TaskLoop", "Taskwait", "Abort",
				"Persistent", "PersistentFrozen", "PersistentAdaptive":
				if pos, bad := closed[obj]; bad {
					l.report(s.Pos(), RuleUseAfterClose,
						"%s on %q after its Close at %s — the workers are gone; move the Close after the last use (or defer it)",
						sel.Sel.Name, id.Name, l.fset.Position(pos))
				}
			}
		}
		return true
	})
}

// --- rule: span-no-end ---

// spanState tracks one variable assigned from a BeginSpan call.
type spanState struct {
	begin    token.Pos // position of the Begin assignment
	ended    bool      // an x.End() call was seen after the Begin
	deferred bool      // a defer x.End() covers every exit
	leakyRet token.Pos // first return between Begin and End, if any
	hasLeak  bool
}

// checkSpanNoEnd walks one function body in source order and flags
// variables holding a BeginSpan result that are never End()ed, or that
// leak past a return statement with no deferred End. The zero-Span
// idiom (`var sp obs.Span; if sampled { sp = BeginSpan(...) };
// sp.End()`) is fine: End on the zero Span is a no-op, and the
// unconditional End closes the sampled case. Nested closures get their
// own context — they execute at a different time.
func (l *pkgLint) checkSpanNoEnd(body *ast.BlockStmt) {
	if !l.on(RuleSpanNoEnd) {
		return
	}
	spans := map[types.Object]*spanState{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			// defer sp.End() closes the span on every exit path.
			if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if st := spans[l.objOf(id)]; st != nil {
						st.deferred = true
					}
				}
			}
			return false
		case *ast.FuncLit:
			l.checkSpanNoEnd(s.Body)
			return false
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := l.objOf(id)
				if obj == nil {
					continue
				}
				rhs := ast.Expr(nil)
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				call, isBegin := rhs.(*ast.CallExpr)
				isBegin = isBegin && isBeginSpanCall(call)
				if st := spans[obj]; st != nil && !st.ended && !st.deferred {
					// Overwritten while open: the old span is lost.
					l.report(st.begin, RuleSpanNoEnd,
						"span %q is reassigned before End() — the open span never reaches the trace", id.Name)
					delete(spans, obj)
				}
				if isBegin {
					// A fresh Begin (or a re-Begin of a closed variable)
					// starts a new tracking window.
					spans[obj] = &spanState{begin: s.Pos()}
				}
			}
		case *ast.ReturnStmt:
			for _, st := range spans {
				if !st.ended && !st.deferred && !st.hasLeak {
					st.hasLeak = true
					st.leakyRet = s.Pos()
				}
			}
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if st := spans[l.objOf(id)]; st != nil {
						st.ended = true
					}
				}
			}
		}
		return true
	})

	for _, st := range spans {
		switch {
		case st.deferred:
		case !st.ended:
			l.report(st.begin, RuleSpanNoEnd,
				"BeginSpan result is never End()ed — the span never reaches the trace export (call End, or defer it)")
		case st.hasLeak:
			l.report(st.leakyRet, RuleSpanNoEnd,
				"return between BeginSpan and End() — the span leaks on this path (defer sp.End() instead)")
		}
	}
}

// isBeginSpanCall matches <expr>.BeginSpan(...) on any receiver.
func isBeginSpanCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "BeginSpan"
}

// isRuntimeNew matches taskdep.New(...) / rt.New(...) where the
// qualifier is an import of the taskdep module (path-checked when type
// info resolves it).
func (l *pkgLint) isRuntimeNew(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "New" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := l.objOf(id).(*types.PkgName)
	if !ok {
		return false
	}
	return isTaskdepPath(pn.Imported().Path())
}

// isNonDetachedSubmit matches <recv>.Submit(Spec{...}) whose literal is
// statically not detached.
func (l *pkgLint) isNonDetachedSubmit(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Submit" || len(call.Args) != 1 {
		return false
	}
	lit, ok := call.Args[0].(*ast.CompositeLit)
	if !ok || !isSpecLit(lit) {
		return false
	}
	return !specIsDetached(specFields(lit))
}
