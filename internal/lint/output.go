package lint

// output.go renders findings as machine-readable JSON and SARIF 2.1.0
// for CI integration. The JSON form is the tool's own schema (stable,
// minimal); SARIF is the interchange format GitHub code scanning and
// most viewers accept.

import (
	"encoding/json"
	"io"
)

// jsonFinding is the stable JSON shape of one finding.
type jsonFinding struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Column int    `json:"column"`
	Rule   string `json:"rule"`
	Msg    string `json:"message"`
}

// WriteJSON renders findings as a JSON array (never null: an empty run
// produces []).
func WriteJSON(w io.Writer, finds []Finding) error {
	out := make([]jsonFinding, 0, len(finds))
	for _, f := range finds {
		out = append(out, jsonFinding{
			File:   f.Pos.Filename,
			Line:   f.Pos.Line,
			Column: f.Pos.Column,
			Rule:   f.Rule,
			Msg:    f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// --- SARIF 2.1.0 (minimal subset) ---

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a single-run SARIF 2.1.0 log with the
// full rule registry attached as driver metadata.
func WriteSARIF(w io.Writer, finds []Finding) error {
	drv := sarifDriver{Name: "taskdeplint"}
	for _, r := range Rules() {
		drv.Rules = append(drv.Rules, sarifRule{
			ID:               r.Name,
			ShortDescription: sarifMessage{Text: r.Doc},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: drv}, Results: []sarifResult{}}
	for _, f := range finds {
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Rule,
			Level:   "warning",
			Message: sarifMessage{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region: sarifRegion{
						StartLine:   f.Pos.Line,
						StartColumn: f.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
