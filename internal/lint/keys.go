package lint

// keys.go resolves a Spec literal's declared dependence keys into
// symbolic (expression, index-tuple) form and defines the overlap
// relation between a key and an effect-set access.
//
// App code builds keys through small helpers — `key(hPartAp, c)`,
// `tileKey(i, k)`, `graph.Key(base + i)` — so a key's useful identity
// for matching is the tuple of argument expressions, normalized to
// source text. A body access like `m.Tile(i, k)` or `a[i][j]` carries
// the same kind of tuple. The two sides are compared structurally: an
// exact tuple match, or a contiguous prefix/suffix relation (a key
// `key(base, i, j)` covers the access `a[i][j]`; a key `key(i)` covers
// `a[i][j]` too — coarser granularity than the access is still
// coverage). Empty-vs-nonempty never matches: a scalar key is an
// ordering token, not evidence about indexed state.

import (
	"go/ast"
	"go/types"
)

// keySym is one declared key in symbolic form.
type keySym struct {
	expr string   // normalized source of the key expression
	idx  []string // argument/index tuple, empty for scalar keys
	wild bool     // unresolvable: treat as matching everything
}

// specKeys is the resolved declaration set of one Spec literal.
type specKeys struct {
	readers []keySym // In
	writers []keySym // Out, InOut, InOutSet
	wild    bool     // some part of the declaration is unresolvable
}

func (sk *specKeys) all() []keySym {
	out := make([]keySym, 0, len(sk.readers)+len(sk.writers))
	out = append(out, sk.readers...)
	out = append(out, sk.writers...)
	return out
}

// concrete reports whether the spec has at least one resolved key.
func (sk *specKeys) concrete() bool {
	for _, k := range sk.all() {
		if !k.wild {
			return true
		}
	}
	return false
}

// renderExpr normalizes an expression to comparable source text.
func renderExpr(e ast.Expr) string {
	return types.ExprString(e)
}

// resolveKeyList resolves one dependence field value (a single key
// expression or a []graph.Key literal) into symbols. wildAll is set
// when the field as a whole cannot be resolved.
func (sc *scopeCtx) resolveKeyList(e ast.Expr, depth int) (syms []keySym, wildAll bool) {
	if depth > 8 || e == nil {
		return nil, true
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			s, w := sc.resolveKeyExpr(el, depth+1)
			if w {
				wildAll = true
				continue
			}
			syms = append(syms, s)
		}
		return syms, wildAll
	case *ast.CallExpr:
		// append(base, more...) unions its arguments' resolutions.
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" && sc.l.objOf(id) == nil {
			for _, a := range x.Args {
				s, w := sc.resolveKeyList(a, depth+1)
				syms = append(syms, s...)
				wildAll = wildAll || w
			}
			return syms, wildAll
		}
		s, w := sc.resolveKeyExpr(e, depth+1)
		if w {
			return nil, true
		}
		return []keySym{s}, false
	case *ast.Ident:
		if v := sc.l.varOf(x); v != nil {
			if ae, ok := sc.aliasOf(v); ok {
				return sc.resolveKeyList(ae, depth+1)
			}
			return nil, true
		}
		s, w := sc.resolveKeyExpr(e, depth+1)
		if w {
			return nil, true
		}
		return []keySym{s}, false
	default:
		s, w := sc.resolveKeyExpr(e, depth+1)
		if w {
			return nil, true
		}
		return []keySym{s}, false
	}
}

// resolveKeyExpr resolves a single key-valued expression.
func (sc *scopeCtx) resolveKeyExpr(e ast.Expr, depth int) (keySym, bool) {
	if depth > 8 || e == nil {
		return keySym{wild: true}, true
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		// key(i, j), tileKey(k, k), graph.Key(expr): the callee name
		// plus normalized argument tuple is the symbol. A zero-arg
		// call is a scalar symbol.
		idx := make([]string, 0, len(x.Args))
		for _, a := range x.Args {
			idx = append(idx, renderExpr(a))
		}
		return keySym{expr: renderExpr(x.Fun), idx: idx}, false
	case *ast.BasicLit:
		return keySym{expr: x.Value}, false
	case *ast.Ident:
		if v := sc.l.varOf(x); v != nil {
			if ae, ok := sc.aliasOf(v); ok {
				return sc.resolveKeyExpr(ae, depth+1)
			}
			// A captured variable with no alias: constants and
			// package-level key names are stable scalar symbols;
			// anything else is unknown.
			if _, isConst := sc.l.objOf(x).(*types.Const); isConst {
				return keySym{expr: x.Name}, false
			}
			return keySym{wild: true}, true
		}
		if _, isConst := sc.l.objOf(x).(*types.Const); isConst {
			return keySym{expr: x.Name}, false
		}
		return keySym{wild: true}, true
	case *ast.SelectorExpr:
		if _, isConst := sc.l.objOf(x.Sel).(*types.Const); isConst {
			return keySym{expr: renderExpr(x)}, false
		}
		return keySym{expr: renderExpr(x)}, false
	case *ast.BinaryExpr:
		// base + i style arithmetic: keep the operand expressions as
		// the tuple so `base + i` can match an access indexed by i.
		l, lw := sc.resolveKeyExpr(x.X, depth+1)
		r, rw := sc.resolveKeyExpr(x.Y, depth+1)
		if lw || rw {
			return keySym{wild: true}, true
		}
		idx := append(append([]string{}, l.idx...), r.idx...)
		if len(idx) == 0 {
			idx = []string{renderExpr(x.X), renderExpr(x.Y)}
		}
		return keySym{expr: renderExpr(x), idx: idx}, false
	case *ast.ParenExpr:
		return sc.resolveKeyExpr(x.X, depth)
	default:
		return keySym{wild: true}, true
	}
}

// resolveSpecKeys resolves all dependence fields of a Spec literal.
func (sc *scopeCtx) resolveSpecKeys(lit *ast.CompositeLit) specKeys {
	var sk specKeys
	if sc.specFieldsMutated(lit) {
		sk.wild = true
		return sk
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		name, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		var dst *[]keySym
		switch name.Name {
		case "In":
			dst = &sk.readers
		case "Out", "InOut", "InOutSet":
			dst = &sk.writers
		default:
			continue
		}
		syms, wild := sc.resolveKeyList(kv.Value, 0)
		*dst = append(*dst, syms...)
		if wild {
			sk.wild = true
			*dst = append(*dst, keySym{wild: true})
		}
	}
	return sk
}

// tupleOverlap reports whether two non-empty index tuples denote
// overlapping state: equal, or one a contiguous prefix or suffix of
// the other (a coarser key still covers a finer access and vice
// versa).
func tupleOverlap(a, b []string) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	// prefix
	pre := true
	for i := range short {
		if short[i] != long[i] {
			pre = false
			break
		}
	}
	if pre {
		return true
	}
	// suffix
	off := len(long) - len(short)
	for i := range short {
		if short[i] != long[off+i] {
			return false
		}
	}
	return true
}

// covers reports whether key k covers access a: a wild key covers
// anything; otherwise both-scalar matches, and both-indexed matches by
// tuple overlap. Scalar key vs indexed access (or the reverse) is not
// coverage by tuple — but a scalar key whose symbol text mentions the
// access's root path is treated as covering, so `Out: doneKey` with a
// body writing `done = true` lines up when the key is derived from the
// same name.
func (k keySym) covers(a access) bool {
	if k.wild {
		return true
	}
	if len(k.idx) == 0 && len(a.idx) == 0 {
		return true
	}
	if len(k.idx) > 0 && len(a.idx) > 0 {
		return tupleOverlap(k.idx, a.idx)
	}
	return false
}

// anyCovers reports whether any key in the list covers the access.
func anyCovers(keys []keySym, a access) bool {
	for _, k := range keys {
		if k.covers(a) {
			return true
		}
	}
	return false
}

// concreteOverlap reports whether a concrete (non-wild) key in keys
// has a non-empty tuple overlapping the access's tuple. Used for
// sibling evidence: wild keys and scalar keys prove nothing about
// indexed state.
func concreteOverlap(keys []keySym, a access) bool {
	if len(a.idx) == 0 {
		return false
	}
	for _, k := range keys {
		if k.wild || len(k.idx) == 0 {
			continue
		}
		if tupleOverlap(k.idx, a.idx) {
			return true
		}
	}
	return false
}
