package lint

// effects.go computes the effect set of a task-body closure: which
// captured (or package-level) state the body reads, writes, or passes
// into calls that may mutate it, each resolved to a symbolic
// (base-path, index-expression-tuple) form so it can be cross-checked
// against the Spec's declared dependence keys.
//
// The model is deliberately intraprocedural and syntactic:
//
//   - an access path is a chain of selectors, index expressions and
//     projection calls rooted at a variable declared outside the
//     closure: `a[i]`, `m.Tile(i, k)`, `s.rbuf`, `pkgVar[j]`;
//   - a simple alias map resolves locals defined by a single `x := expr`
//     back to the expression, so `t := m.Tile(i, j); t[0] = v` is a
//     write to (m.Tile, [i j 0]);
//   - a method call on captured state whose result is discarded is an
//     opaque mutation — the receiver may change in ways we cannot
//     resolve, so the body's effect set is marked opaque and stale-dep
//     (which needs a complete effect set) stands down;
//   - calling a captured func-typed variable is likewise opaque.
//
// Index expressions are normalized to source strings; two tuples match
// when one is a prefix, suffix or exact copy of the other (see
// keys.go). Anything the resolver cannot express degrades toward
// silence, never toward a false report.

import (
	"go/ast"
	"go/token"
	"go/types"
)

type accessKind uint8

const (
	accRead    accessKind = iota // value read
	accWrite                     // direct assignment target
	accMutCall                   // mutable state passed to a call: read or write unknown
)

func (k accessKind) String() string {
	switch k {
	case accWrite:
		return "writes"
	case accMutCall:
		return "passes to a call (potential write)"
	}
	return "reads"
}

// access is one resolved touch of shared state.
type access struct {
	kind     accessKind
	path     string   // rendered base path, e.g. "m.Tile", "table"
	idx      []string // normalized index/argument expressions along the path
	at       token.Pos
	pkgLevel bool // rooted at a package-level variable of the linted package
	mutRoot  bool // the root variable's type can alias shared state
}

// effects is the computed effect set of one closure.
type effects struct {
	list       []access
	opaque     bool // an unresolvable mutation of captured state exists
	incomplete bool // type info too weak to trust the set (cross-package state writes)
}

// pathInfo is the symbolic resolution of an access expression.
type pathInfo struct {
	ok       bool
	root     *types.Var
	path     string
	idx      []string
	pkgQual  bool // rooted at an imported package's qualifier
	viaAlias bool
}

// scopeCtx carries per-function-scope resolution state: the alias map
// and the set of locals whose aliases are untrustworthy (reassigned, or
// defined from multi-value expressions).
type scopeCtx struct {
	l        *pkgLint
	parent   *scopeCtx
	alias    map[*types.Var]ast.Expr
	poisoned map[*types.Var]bool
	// fieldMutated marks variables whose struct fields are assigned
	// after initialization (deps.Out = ... on a Spec-holding var).
	fieldMutated map[types.Object]bool
	// specVars maps a Spec composite literal to the variable it was
	// bound to with :=, if any.
	specVars map[*ast.CompositeLit]types.Object
}

// newScopeCtx scans one function body (excluding nested function
// literals) and records single-definition aliases plus field-mutation
// poisoning.
func newScopeCtx(l *pkgLint, parent *scopeCtx, body *ast.BlockStmt) *scopeCtx {
	sc := &scopeCtx{
		l:            l,
		parent:       parent,
		alias:        map[*types.Var]ast.Expr{},
		poisoned:     map[*types.Var]bool{},
		fieldMutated: map[types.Object]bool{},
		specVars:     map[*ast.CompositeLit]types.Object{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // nested scopes build their own context
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE && len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					v, _ := l.objOf(id).(*types.Var)
					if v == nil {
						continue
					}
					if _, dup := sc.alias[v]; dup || sc.poisoned[v] {
						sc.poisoned[v] = true
						continue
					}
					sc.alias[v] = s.Rhs[i]
					if lit, ok := s.Rhs[i].(*ast.CompositeLit); ok && isSpecLit(lit) {
						sc.specVars[lit] = v
					}
				}
			} else {
				// Reassignment (or multi-value define) poisons the
				// targets; a field assignment poisons the holder.
				for _, lhs := range s.Lhs {
					switch t := lhs.(type) {
					case *ast.Ident:
						if v, _ := l.objOf(t).(*types.Var); v != nil {
							sc.poisoned[v] = true
						}
					case *ast.SelectorExpr:
						if id, ok := t.X.(*ast.Ident); ok {
							if o := l.objOf(id); o != nil {
								sc.fieldMutated[o] = true
							}
						}
					}
				}
			}
		}
		return true
	})
	return sc
}

// aliasOf resolves v through this and enclosing scopes.
func (sc *scopeCtx) aliasOf(v *types.Var) (ast.Expr, bool) {
	for s := sc; s != nil; s = s.parent {
		if s.poisoned[v] {
			return nil, false
		}
		if e, ok := s.alias[v]; ok {
			return e, true
		}
	}
	return nil, false
}

// specFieldsMutated reports whether the variable holding lit had
// dependence fields assigned after the literal (deps.Out = ...), which
// makes the literal's declared key set unknowable.
func (sc *scopeCtx) specFieldsMutated(lit *ast.CompositeLit) bool {
	for s := sc; s != nil; s = s.parent {
		if v, ok := s.specVars[lit]; ok {
			for t := sc; t != nil; t = t.parent {
				if t.fieldMutated[v] {
					return true
				}
			}
		}
	}
	return false
}

// resolvePath resolves an access expression to its symbolic form. The
// depth guard bounds alias-chain recursion.
func (sc *scopeCtx) resolvePath(e ast.Expr, depth int) pathInfo {
	if depth > 8 {
		return pathInfo{}
	}
	switch x := e.(type) {
	case *ast.Ident:
		if pn, ok := sc.l.objOf(x).(*types.PkgName); ok && pn != nil {
			return pathInfo{ok: true, path: x.Name, pkgQual: true}
		}
		v := sc.l.varOf(x)
		if v == nil {
			return pathInfo{}
		}
		if ae, ok := sc.aliasOf(v); ok {
			if p := sc.resolvePath(ae, depth+1); p.ok {
				p.viaAlias = true
				return p
			}
		}
		return pathInfo{ok: true, root: v, path: x.Name}
	case *ast.ParenExpr:
		return sc.resolvePath(x.X, depth)
	case *ast.StarExpr:
		return sc.resolvePath(x.X, depth)
	case *ast.TypeAssertExpr:
		return sc.resolvePath(x.X, depth)
	case *ast.SelectorExpr:
		p := sc.resolvePath(x.X, depth)
		if !p.ok {
			return pathInfo{}
		}
		p.path += "." + x.Sel.Name
		return p
	case *ast.IndexExpr:
		p := sc.resolvePath(x.X, depth)
		if !p.ok {
			return pathInfo{}
		}
		p.idx = append(append([]string{}, p.idx...), renderExpr(x.Index))
		return p
	case *ast.IndexListExpr:
		p := sc.resolvePath(x.X, depth)
		if !p.ok {
			return pathInfo{}
		}
		for _, ix := range x.Indices {
			p.idx = append(append([]string{}, p.idx...), renderExpr(ix))
		}
		return p
	case *ast.CallExpr:
		// Projection call: m.Tile(i, k) — a method on captured state
		// whose result names a piece of that state, indexed by the
		// arguments.
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			return pathInfo{}
		}
		p := sc.resolvePath(sel.X, depth)
		if !p.ok || p.pkgQual {
			return pathInfo{}
		}
		p.path += "." + sel.Sel.Name
		idx := append([]string{}, p.idx...)
		for _, a := range x.Args {
			idx = append(idx, renderExpr(a))
		}
		p.idx = idx
		return p
	}
	return pathInfo{}
}

// collectEffects walks one task-body closure and returns its effect
// set relative to the given scope.
func (l *pkgLint) collectEffects(sc *scopeCtx, fn *ast.FuncLit) *effects {
	eff := &effects{}
	ec := &effectCollector{l: l, sc: sc, fn: fn, eff: eff}
	ec.stmtList(fn.Body.List)
	return eff
}

type effectCollector struct {
	l   *pkgLint
	sc  *scopeCtx
	fn  *ast.FuncLit
	eff *effects
}

// tracked reports whether v is shared state from the closure's point of
// view: declared outside the closure (captured) or package-level.
func (ec *effectCollector) tracked(v *types.Var) bool {
	if v == nil || v.IsField() {
		return false
	}
	if v.Pos() >= ec.fn.Pos() && v.Pos() < ec.fn.End() {
		return false // param or local of the closure
	}
	return true
}

func (ec *effectCollector) pkgLevel(v *types.Var) bool {
	return v != nil && ec.l.pkg != nil && v.Parent() == ec.l.pkg.Scope()
}

// mutableType reports whether a value of type t can alias shared
// mutable state (so passing it to a call may write through it). An
// unresolved type (stub-imported package) counts as mutable — the
// conservative direction, since mut-call accesses only ever fire with
// corroborating sibling evidence.
func mutableType(t types.Type) bool {
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Invalid || u.Kind() == types.UnsafePointer
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Interface:
		return true
	case *types.Signature:
		return false // calling it is handled separately (opaque)
	default:
		return false // arrays, structs, funcs passed by value
	}
}

func (ec *effectCollector) add(kind accessKind, p pathInfo, at token.Pos) {
	if p.pkgQual {
		// State of another package: type info cannot classify it, so
		// the effect set is not trustworthy for write checking.
		if kind != accRead {
			ec.eff.incomplete = true
		}
		return
	}
	if !ec.tracked(p.root) {
		return
	}
	a := access{
		kind:     kind,
		path:     p.path,
		idx:      p.idx,
		at:       at,
		pkgLevel: ec.pkgLevel(p.root),
		mutRoot:  mutableType(p.root.Type()),
	}
	ec.eff.list = append(ec.eff.list, a)
}

func (ec *effectCollector) stmtList(list []ast.Stmt) {
	for _, s := range list {
		ec.stmt(s)
	}
}

func (ec *effectCollector) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		ec.exprStatement(st.X)
	case *ast.AssignStmt:
		if st.Tok == token.DEFINE {
			for _, r := range st.Rhs {
				ec.expr(r)
			}
			return
		}
		for _, lhs := range st.Lhs {
			ec.writeTarget(lhs)
		}
		for _, r := range st.Rhs {
			ec.expr(r)
		}
	case *ast.IncDecStmt:
		ec.writeTarget(st.X)
	case *ast.GoStmt:
		ec.exprStatement(st.Call)
	case *ast.DeferStmt:
		ec.exprStatement(st.Call)
	case *ast.SendStmt:
		if p := ec.sc.resolvePath(st.Chan, 0); p.ok {
			ec.add(accMutCall, p, st.Chan.Pos())
		} else {
			ec.expr(st.Chan)
		}
		ec.expr(st.Value)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			ec.expr(r)
		}
	case *ast.IfStmt:
		ec.stmt(st.Init)
		ec.expr(st.Cond)
		ec.stmtList(st.Body.List)
		ec.stmt(st.Else)
	case *ast.ForStmt:
		ec.stmt(st.Init)
		ec.expr(st.Cond)
		ec.stmt(st.Post)
		ec.stmtList(st.Body.List)
	case *ast.RangeStmt:
		if st.Tok == token.ASSIGN {
			ec.writeTarget(st.Key)
			ec.writeTarget(st.Value)
		}
		ec.expr(st.X)
		ec.stmtList(st.Body.List)
	case *ast.BlockStmt:
		ec.stmtList(st.List)
	case *ast.SwitchStmt:
		ec.stmt(st.Init)
		ec.expr(st.Tag)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ec.expr(e)
				}
				ec.stmtList(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		ec.stmt(st.Init)
		ec.stmt(st.Assign)
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ec.stmtList(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ec.stmt(cc.Comm)
				ec.stmtList(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		ec.stmt(st.Stmt)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ec.expr(v)
					}
				}
			}
		}
	}
}

// writeTarget records a direct assignment target.
func (ec *effectCollector) writeTarget(lhs ast.Expr) {
	if lhs == nil {
		return
	}
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	p := ec.sc.resolvePath(lhs, 0)
	if p.ok || p.pkgQual {
		ec.add(accWrite, p, lhs.Pos())
		// The index expressions themselves are reads.
		ec.indexReads(lhs)
		return
	}
	// Unresolvable target: if any captured state is reachable from it,
	// the write is opaque.
	if ec.mentionsTracked(lhs) {
		ec.eff.opaque = true
	}
}

// indexReads walks only the index sub-expressions of a path (a[f(x)]
// reads whatever f(x) reads even when a[...] is a write target).
func (ec *effectCollector) indexReads(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		ec.expr(x.Index)
		ec.indexReads(x.X)
	case *ast.SelectorExpr:
		ec.indexReads(x.X)
	case *ast.StarExpr:
		ec.indexReads(x.X)
	case *ast.ParenExpr:
		ec.indexReads(x.X)
	case *ast.CallExpr:
		for _, a := range x.Args {
			ec.expr(a)
		}
		ec.indexReads(x.Fun)
	}
}

// mentionsTracked reports whether any identifier below e resolves to a
// captured or package-level variable.
func (ec *effectCollector) mentionsTracked(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := ec.l.varOf(id); ec.tracked(v) {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprStatement handles a call in statement position (result
// discarded).
func (ec *effectCollector) exprStatement(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		ec.expr(e)
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		// recv.Method(...): if the receiver chain roots at captured
		// state, the method may mutate it in ways we cannot resolve.
		p := ec.sc.resolvePath(fun.X, 0)
		if p.ok && ec.tracked(p.root) && mutableType(p.root.Type()) {
			ec.eff.opaque = true
		} else if !p.ok && ec.mentionsTracked(fun.X) {
			ec.eff.opaque = true
		} else {
			ec.expr(fun.X)
		}
		ec.callArgs(call)
	case *ast.Ident:
		// Plain call: a captured func-typed variable is opaque (the
		// closure may touch anything); a package-level function is
		// handled through its arguments only.
		if v := ec.l.varOf(fun); ec.tracked(v) {
			ec.eff.opaque = true
		}
		ec.callArgs(call)
	default:
		ec.expr(call.Fun)
		ec.callArgs(call)
	}
}

// callArgs classifies each argument of a call: a resolvable path to
// captured mutable state is a potential write (accMutCall); a path to
// value-typed state is a read; anything else recurses.
func (ec *effectCollector) callArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		ec.callArg(arg)
	}
}

func (ec *effectCollector) callArg(arg ast.Expr) {
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		if p := ec.sc.resolvePath(u.X, 0); p.ok || p.pkgQual {
			ec.add(accMutCall, p, arg.Pos())
			ec.indexReads(u.X)
			return
		}
		ec.expr(u.X)
		return
	}
	p := ec.sc.resolvePath(arg, 0)
	if p.ok || p.pkgQual {
		t := ec.l.info.TypeOf(arg)
		if mutableType(t) {
			ec.add(accMutCall, p, arg.Pos())
		} else {
			ec.add(accRead, p, arg.Pos())
		}
		ec.indexReads(arg)
		return
	}
	ec.expr(arg)
}

// expr walks an expression in read context.
func (ec *effectCollector) expr(e ast.Expr) {
	if e == nil {
		return
	}
	if p := ec.sc.resolvePath(e, 0); p.ok || p.pkgQual {
		// For a projection call the base read also covers the call.
		ec.add(accRead, p, e.Pos())
		ec.indexReads(e)
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		ec.exprStatement(x) // same classification as statement position
	case *ast.BinaryExpr:
		ec.expr(x.X)
		ec.expr(x.Y)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			ec.callArg(e)
			return
		}
		ec.expr(x.X)
	case *ast.ParenExpr:
		ec.expr(x.X)
	case *ast.StarExpr:
		ec.expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ec.expr(kv.Value)
				continue
			}
			ec.expr(el)
		}
	case *ast.FuncLit:
		// A nested closure's effects still belong to the task body —
		// whatever it captures may be touched when it runs.
		ec.stmtList(x.Body.List)
	case *ast.KeyValueExpr:
		ec.expr(x.Value)
	case *ast.SliceExpr:
		if p := ec.sc.resolvePath(x.X, 0); p.ok || p.pkgQual {
			ec.add(accRead, p, x.X.Pos())
		} else {
			ec.expr(x.X)
		}
		ec.expr(x.Low)
		ec.expr(x.High)
		ec.expr(x.Max)
	case *ast.TypeAssertExpr:
		ec.expr(x.X)
	case *ast.IndexExpr:
		ec.expr(x.X)
		ec.expr(x.Index)
	case *ast.SelectorExpr:
		ec.expr(x.X)
	}
}
