// Package lint is the static-analysis engine behind cmd/taskdeplint.
//
// # Why a static pass
//
// The runtime discovers the task dependency graph from each Spec's
// declared In/Out/InOut/InOutSet keys — the declarations ARE the
// program. internal/verify checks them dynamically, but only for
// conflicts that materialize on the executed input and schedule, and
// under frozen-graph replay a wrong declaration is recorded once and
// re-raced forever. This package proves declaration/effect agreement
// at build time instead.
//
// # Rule catalogue
//
//	loop-capture      Spec body captures a loop variable mutated by later
//	                  iterations (pre-1.22 semantics, or captured index
//	                  reused after the loop).
//	fused-capture     Spec body captures a loop-local variable the same
//	                  iteration reassigns after the Spec is built; a
//	                  fused body may run inline before or after that
//	                  write and observe either value.
//	use-after-close   Submit/Taskwait/Persistent after Close on the same
//	                  runtime variable in one function.
//	fulfill-nil-event Fulfill on the Submit result of a non-Detached Spec
//	                  (Submit returns a nil *Event for those).
//	missing-out       body writes package-level state with no writer keys,
//	                  reported only when type info was too incomplete for
//	                  the effect analysis (dep-coverage subsumes it
//	                  otherwise).
//	dropped-error     a Do closure discards a call result with _ while
//	                  every return is `return nil`.
//	span-no-end       a BeginSpan result never End()ed on some path.
//	undeclared-write  the body mutates shared captured state covered by no
//	                  Out/InOut/InOutSet key.
//	undeclared-read   the body reads indexed state a sibling task declares
//	                  it writes, with no connecting key.
//	stale-dep         a declared indexed key matching nothing the body
//	                  touches.
//	unprovided-consume a submitted dataflow Spec Consumes a freshly
//	                  bound slot nothing in the window Provides,
//	                  Updates or Sets: the In dependence has no writer
//	                  and the body reads an empty slot.
//	unused-ignore     a taskdeplint:ignore comment that suppresses nothing.
//
// # The dep-coverage analysis
//
// For every Spec composite literal carrying a Body, Do or DetachedBody
// closure, the analysis computes the closure's effect set: each touch
// of state declared outside the closure, classified read / write /
// passed-mutably-to-a-call, and resolved to a symbolic path plus an
// index tuple. `a[i][j]` becomes (a, [i, j]); the projection call
// `m.Tile(i, k)` becomes (m.Tile, [i, k]); an intraprocedural alias
// map resolves `t := m.Tile(i, j); t[0] = v` back through t. Declared
// keys resolve the same way — `tileKey(i, k)` is (tileKey, [i, k]) —
// so helper-built keys and body accesses meet in one index-tuple
// space, compared by exact match or contiguous prefix/suffix overlap.
//
// # Soundness model
//
// The analysis is deliberately unsound in the quiet direction: every
// rule needs positive evidence before firing, and anything the
// resolver cannot express degrades toward silence.
//
//   - A method call on captured state in statement position, or a call
//     of a captured func value, marks the effect set opaque: the body
//     may touch anything, so stale-dep (which needs a complete set)
//     stands down. Declared keys over opaque bodies are trusted.
//   - undeclared-write on a direct assignment fires only when the
//     target is package-level, overlaps a sibling Spec's concrete key,
//     or overlaps the spec's own In keys (an In that should have been
//     InOut). Potential writes through calls additionally require
//     sibling corroboration.
//   - undeclared-read fires only for index-tuple overlap with a
//     concrete sibling *writer* key, and only for roots whose type can
//     alias shared state.
//   - stale-dep considers only indexed keys (scalar keys are ordering
//     tokens by convention) on non-opaque bodies with at least one
//     indexed access.
//   - If a spec declares concrete keys and none matches any access —
//     the code names keys by a convention the resolver cannot see
//     through — the whole spec stands down rather than spray findings.
//   - Sibling grouping is per function scope, segmented at Taskwait /
//     Close / Persistent barriers in source order.
//
// Known blind spots, accepted by design: interprocedural effects
// (bodies calling free functions mutate only what the arguments
// reveal), renamed index variables across tasks, keys built by
// arithmetic the resolver cannot decompose, and writes through
// aliases established before the enclosing function.
//
// # Suppression
//
// `// taskdeplint:ignore` on a finding's line or the line above
// suppresses every rule; `// taskdeplint:ignore rule-a,rule-b`
// suppresses only the named rules. A directive that suppresses
// nothing is itself reported (unused-ignore).
package lint
