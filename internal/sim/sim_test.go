package sim

import (
	"math"
	"testing"
	"testing/quick"

	"taskdep/internal/graph"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Fatalf("end = %v", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(1, func() {
		e.After(2, func() { at = e.Now() })
	})
	e.Run()
	if at != 3 {
		t.Fatalf("nested event at %v, want 3", at)
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	e := NewEngine()
	var at float64
	e.At(5, func() {
		e.At(1, func() { at = e.Now() }) // in the past: clamps to now
	})
	e.Run()
	if at != 5 {
		t.Fatalf("past event at %v, want 5", at)
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(4<<10, 1<<10) // 4 blocks
	for i := 0; i < 4; i++ {
		if c.touch(BlockID(i)) {
			t.Fatalf("cold access hit")
		}
	}
	if !c.touch(0) {
		t.Fatalf("resident block missed")
	}
	c.touch(4) // evicts LRU = 1
	if c.contains(1) {
		t.Fatalf("LRU block not evicted")
	}
	if !c.contains(0) || !c.contains(4) {
		t.Fatalf("wrong eviction")
	}
}

// TestPropertyLRUNeverExceedsCapacity model-checks occupancy and that the
// most recent K blocks always hit (K = capacity in blocks).
func TestPropertyLRUNeverExceedsCapacity(t *testing.T) {
	f := func(accesses []uint8) bool {
		const blocks = 8
		c := newLRU(blocks<<10, 1<<10)
		for _, a := range accesses {
			c.touch(BlockID(a % 32))
			if c.used > c.capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyInclusiveCounters(t *testing.T) {
	cfg := DefaultCacheConfig()
	h := NewHierarchy(2, cfg)
	// First access: miss everywhere.
	cost, dram := h.Access(0, 1)
	if !dram || cost != cfg.DRAMTime {
		t.Fatalf("cold access cost=%v dram=%v", cost, dram)
	}
	st := h.Stats()
	if st.L1DCM != 1 || st.L2DCM != 1 || st.L3CM != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Same block, same core: L1 hit.
	cost, _ = h.Access(0, 1)
	if cost != cfg.L1Time {
		t.Fatalf("resident cost = %v", cost)
	}
	// Same block, other core: private L1/L2 miss, shared L3 hit.
	cost, _ = h.Access(1, 1)
	if cost != cfg.L3Time {
		t.Fatalf("cross-core cost = %v, want L3", cost)
	}
	st = h.Stats()
	if st.L3CM != 1 {
		t.Fatalf("L3 misses = %d, want 1", st.L3CM)
	}
}

func TestBlocksOf(t *testing.T) {
	fp := BlocksOf(3, 0, 4096, 1024)
	if len(fp) != 4 {
		t.Fatalf("blocks = %d", len(fp))
	}
	fp = BlocksOf(3, 100, 101, 1024)
	if len(fp) != 1 {
		t.Fatalf("sub-block range blocks = %d", len(fp))
	}
	if got := BlocksOf(3, 10, 10, 1024); got != nil {
		t.Fatalf("empty range not nil: %v", got)
	}
	// Distinct arrays never alias.
	a := BlocksOf(1, 0, 1024, 1024)[0]
	b := BlocksOf(2, 0, 1024, 1024)[0]
	if a == b {
		t.Fatalf("array namespaces alias")
	}
}

// chainOps builds a linear dependence chain of n compute tasks.
func chainOps(n int, compute float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Submit(TaskSpec{
			Label:   "t",
			Deps:    []graph.Dep{{Key: 1, Type: graph.InOut}},
			Compute: compute,
		})
	}
	return ops
}

// wideOps builds n independent compute tasks.
func wideOps(n int, compute float64) []Op {
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Submit(TaskSpec{
			Label:   "w",
			Deps:    []graph.Dep{{Key: graph.Key(100 + i), Type: graph.Out}},
			Compute: compute,
		})
	}
	return ops
}

func runSingle(cfg RankConfig, ops []Op, iters int) *Rank {
	eng := NewEngine()
	r := NewRank(0, eng, nil, cfg, ops, iters)
	done := false
	r.Start(func() { done = true })
	eng.Run()
	if !done {
		panic("rank did not quiesce")
	}
	return r
}

func TestRankExecutesChainSerially(t *testing.T) {
	const n, c = 10, 1e-3
	r := runSingle(RankConfig{Cores: 4}, chainOps(n, c), 1)
	// Chain: makespan >= n*compute (+ discovery/sched overheads).
	if r.Makespan < n*c {
		t.Fatalf("makespan %v < serial bound %v", r.Makespan, n*c)
	}
	if r.Makespan > n*c*1.2 {
		t.Fatalf("makespan %v too large for a chain", r.Makespan)
	}
	b := r.Profile().Breakdown()
	if b.Tasks != n {
		t.Fatalf("tasks = %d", b.Tasks)
	}
}

func TestRankParallelSpeedup(t *testing.T) {
	const n, c = 64, 1e-3
	r1 := runSingle(RankConfig{Cores: 2}, wideOps(n, c), 1) // core0 discovers first
	r4 := runSingle(RankConfig{Cores: 5}, wideOps(n, c), 1)
	if r4.Makespan >= r1.Makespan {
		t.Fatalf("no speedup: 2-core %v vs 5-core %v", r1.Makespan, r4.Makespan)
	}
	// After discovery the producer core joins execution, so the ideal
	// ratio is 5/2 = 2.5x, minus discovery overhead.
	sp := r1.Makespan / r4.Makespan
	if sp < 2.2 {
		t.Fatalf("speedup = %v, want >= 2.2 (2 vs 5 cores)", sp)
	}
}

func TestRankDiscoveryBoundIdleness(t *testing.T) {
	// Tiny tasks (1us) with expensive discovery: workers starve and the
	// makespan approaches the discovery time.
	const n = 2000
	ops := wideOps(n, 1e-6)
	r := runSingle(RankConfig{Cores: 8}, ops, 1)
	b := r.Profile().Breakdown()
	if b.Discovery < 0.8*r.Makespan {
		t.Fatalf("expected discovery-bound run: discovery %v of makespan %v", b.Discovery, r.Makespan)
	}
	if b.IdleTime < b.Work {
		t.Fatalf("expected idleness to dominate: idle %v work %v", b.IdleTime, b.Work)
	}
}

func TestRankComputeBoundWhenGrainsLarge(t *testing.T) {
	const n = 64
	ops := wideOps(n, 5e-3)
	r := runSingle(RankConfig{Cores: 4}, ops, 1)
	b := r.Profile().Breakdown()
	if b.Discovery > 0.05*r.Makespan {
		t.Fatalf("discovery %v should be negligible vs makespan %v", b.Discovery, r.Makespan)
	}
	if got, want := b.Work, float64(n)*5e-3; math.Abs(got-want) > 0.05*want {
		t.Fatalf("work = %v, want ~%v", got, want)
	}
}

func TestDepthFirstReusesCache(t *testing.T) {
	// Producer/consumer pairs on the same blocks: depth-first should
	// yield fewer L2/L3 misses than breadth-first.
	build := func() []Op {
		var ops []Op
		for i := 0; i < 64; i++ {
			fp := BlocksOf(uint64(i), 0, 64<<10, 1<<10) // 64 KiB per pair
			ops = append(ops, Submit(TaskSpec{
				Label: "produce", Compute: 20e-6, Footprint: fp,
				Deps: []graph.Dep{{Key: graph.Key(i), Type: graph.Out}},
			}))
			ops = append(ops, Submit(TaskSpec{
				Label: "consume", Compute: 20e-6, Footprint: fp,
				Deps: []graph.Dep{{Key: graph.Key(i), Type: graph.In}},
			}))
		}
		return ops
	}
	rDF := runSingle(RankConfig{Cores: 4}, build(), 1)
	rBF := runSingle(RankConfig{Cores: 4, Policy: 1 /* BreadthFirst */}, build(), 1)
	df, bf := rDF.CacheStats(), rBF.CacheStats()
	if df.L2DCM >= bf.L2DCM {
		t.Fatalf("depth-first L2 misses %d not better than breadth-first %d", df.L2DCM, bf.L2DCM)
	}
}

func TestThrottleBoundsLiveTasksDES(t *testing.T) {
	const limit = 16
	ops := wideOps(500, 50e-6)
	eng := NewEngine()
	r := NewRank(0, eng, nil, RankConfig{Cores: 4, ThrottleTotal: limit}, ops, 1)
	maxLive := int64(0)
	r.Start(func() {})
	for eng.Step() {
		if l := r.Graph().Live(); l > maxLive {
			maxLive = l
		}
	}
	if maxLive > limit {
		t.Fatalf("live reached %d, throttle %d", maxLive, limit)
	}
}

func TestPersistentIterationsReplay(t *testing.T) {
	const n, iters = 32, 6
	ops := chainOps(n, 100e-6)
	r := runSingle(RankConfig{Cores: 4, Persistent: true, Opts: graph.OptAll}, ops, iters)
	st := r.Graph().Stats()
	if st.Tasks != n {
		t.Fatalf("tasks discovered = %d, want %d (recorded once)", st.Tasks, n)
	}
	if st.ReplayedTasks != int64(n*(iters-1)) {
		t.Fatalf("replayed = %d, want %d", st.ReplayedTasks, n*(iters-1))
	}
	b := r.Profile().Breakdown()
	if len(b.DiscoveryIter) != iters {
		t.Fatalf("iteration marks = %d, want %d", len(b.DiscoveryIter), iters)
	}
	// Replay discovery must be much cheaper than iteration 0.
	if b.DiscoveryIter[1] > b.DiscoveryIter[0]/2 {
		t.Fatalf("replay discovery %v vs first %v: expected large reduction",
			b.DiscoveryIter[1], b.DiscoveryIter[0])
	}
}

func TestPersistentVsPlainDiscoveryFactor(t *testing.T) {
	const n, iters = 200, 8
	mk := func(persistent bool) float64 {
		r := runSingle(RankConfig{Cores: 4, Persistent: persistent, Opts: graph.OptAll},
			chainOps(n, 50e-6), iters)
		return r.Profile().Breakdown().Discovery
	}
	plain := mk(false)
	pers := mk(true)
	if pers >= plain/3 {
		t.Fatalf("persistent discovery %v not ≪ plain %v", pers, plain)
	}
}

func TestDiscoverFirstMode(t *testing.T) {
	const n = 100
	ops := wideOps(n, 100e-6)
	r := runSingle(RankConfig{Cores: 4, DiscoverFirst: true, DetailTrace: true}, ops, 1)
	b := r.Profile().Breakdown()
	// No task may start before discovery completed.
	var firstStart float64 = math.Inf(1)
	for _, tr := range r.Profile().Tasks() {
		if tr.Start < firstStart {
			firstStart = tr.Start
		}
	}
	if firstStart < b.Discovery {
		t.Fatalf("execution started at %v before discovery ended %v", firstStart, b.Discovery)
	}
}

func TestTaskwaitOpBlocksDiscovery(t *testing.T) {
	ops := []Op{
		Submit(TaskSpec{Label: "a", Compute: 1e-3, Deps: []graph.Dep{{Key: 1, Type: graph.Out}}}),
		Taskwait(),
		Submit(TaskSpec{Label: "b", Compute: 1e-3, Deps: []graph.Dep{{Key: 2, Type: graph.Out}}}),
	}
	r := runSingle(RankConfig{Cores: 2, DetailTrace: true}, ops, 1)
	recs := r.Profile().Tasks()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	var a, b *struct{ s, e float64 }
	for _, tr := range recs {
		v := &struct{ s, e float64 }{tr.Start, tr.End}
		if tr.Label == "a" {
			a = v
		} else {
			b = v
		}
	}
	if b.s < a.e {
		t.Fatalf("task b started %v before taskwait (a ends %v)", b.s, a.e)
	}
}

func TestNetworkEagerSendRecv(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 2, DefaultNetConfig())
	var sendDone, recvDone float64 = -1, -1
	eng.At(0, func() {
		net.PostSend(0, 1, 7, 1024, nil, func() { sendDone = eng.Now() })
	})
	eng.At(1e-6, func() {
		net.PostRecv(1, 0, 7, 1024, nil, func() { recvDone = eng.Now() })
	})
	eng.Run()
	if sendDone < 0 || recvDone < 0 {
		t.Fatalf("ops incomplete: send=%v recv=%v", sendDone, recvDone)
	}
	if sendDone > 0.5e-5 {
		t.Fatalf("eager send completed late: %v", sendDone)
	}
	if recvDone < sendDone {
		t.Fatalf("recv before send payload")
	}
}

func TestNetworkRendezvousCouplesCompletion(t *testing.T) {
	eng := NewEngine()
	cfg := DefaultNetConfig()
	net := NewNetwork(eng, 2, cfg)
	bytes := cfg.EagerThreshold * 2
	var sendDone, recvDone float64 = -1, -1
	eng.At(0, func() {
		net.PostSend(0, 1, 7, bytes, nil, func() { sendDone = eng.Now() })
	})
	const recvPost = 5e-3 // late receiver
	eng.At(recvPost, func() {
		net.PostRecv(1, 0, 7, bytes, nil, func() { recvDone = eng.Now() })
	})
	eng.Run()
	if sendDone < recvPost {
		t.Fatalf("rendezvous send completed at %v before recv posted at %v", sendDone, recvPost)
	}
	if math.Abs(sendDone-recvDone) > 1e-12 {
		t.Fatalf("rendezvous completions differ: %v vs %v", sendDone, recvDone)
	}
}

func TestNetworkAllreduceWaitsForAll(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 4, DefaultNetConfig())
	posts := []float64{0, 1e-3, 2e-3, 8e-3}
	var dones []float64
	for r := 0; r < 4; r++ {
		r := r
		eng.At(posts[r], func() {
			net.PostAllreduce(r, 8, nil, func() { dones = append(dones, eng.Now()) })
		})
	}
	eng.Run()
	if len(dones) != 4 {
		t.Fatalf("completions = %d", len(dones))
	}
	for _, d := range dones {
		if d < 8e-3 {
			t.Fatalf("allreduce completed at %v before last post", d)
		}
	}
}

func TestClusterTwoRankPingPong(t *testing.T) {
	// Rank 0 sends to rank 1, rank 1 receives then sends back.
	build := func(rk int) ([]Op, int) {
		var ops []Op
		if rk == 0 {
			ops = append(ops,
				Submit(TaskSpec{Label: "send", Comm: &CommOp{Kind: SendOp, Peer: 1, Tag: 1, Bytes: 1024},
					Deps: []graph.Dep{{Key: 1, Type: graph.Out}}}),
				Submit(TaskSpec{Label: "recv", Comm: &CommOp{Kind: RecvOp, Peer: 1, Tag: 2, Bytes: 1024},
					Deps: []graph.Dep{{Key: 2, Type: graph.Out}}}),
			)
		} else {
			ops = append(ops,
				Submit(TaskSpec{Label: "recv", Comm: &CommOp{Kind: RecvOp, Peer: 0, Tag: 1, Bytes: 1024},
					Deps: []graph.Dep{{Key: 1, Type: graph.Out}}}),
				Submit(TaskSpec{Label: "work", Compute: 1e-3,
					Deps: []graph.Dep{{Key: 1, Type: graph.In}, {Key: 2, Type: graph.Out}}}),
				Submit(TaskSpec{Label: "send", Comm: &CommOp{Kind: SendOp, Peer: 0, Tag: 2, Bytes: 1024},
					Deps: []graph.Dep{{Key: 2, Type: graph.In}, {Key: 3, Type: graph.Out}}}),
			)
		}
		return ops, 1
	}
	cl := NewCluster(2, DefaultNetConfig(), RankConfig{Cores: 2}, build)
	end := cl.Run()
	if end < 1e-3 {
		t.Fatalf("makespan %v less than rank 1's work", end)
	}
	for _, r := range cl.Ranks {
		if !r.finished {
			t.Fatalf("rank %d did not finish", r.ID)
		}
	}
}

func TestClusterAllreduceAcrossIterations(t *testing.T) {
	const ranks, iters = 4, 3
	build := func(rk int) ([]Op, int) {
		ops := []Op{
			Submit(TaskSpec{Label: "dt", Comm: &CommOp{Kind: AllreduceOp, Bytes: 8},
				Deps: []graph.Dep{{Key: 10, Type: graph.InOut}}}),
			Submit(TaskSpec{Label: "work", Compute: 0.5e-3,
				Deps: []graph.Dep{{Key: 10, Type: graph.In}, {Key: 11, Type: graph.InOut}}}),
		}
		return ops, iters
	}
	cl := NewCluster(ranks, DefaultNetConfig(), RankConfig{Cores: 2}, build)
	end := cl.Run()
	if end < float64(iters)*0.5e-3 {
		t.Fatalf("makespan %v < serial allreduce chain bound", end)
	}
}

func TestDeterminism(t *testing.T) {
	build := func(rk int) ([]Op, int) {
		var ops []Op
		for i := 0; i < 40; i++ {
			ops = append(ops, Submit(TaskSpec{
				Label: "w", Compute: float64(i%7) * 10e-6,
				Footprint: BlocksOf(uint64(i%5), 0, 8<<10, 1<<10),
				Deps:      []graph.Dep{{Key: graph.Key(i % 3), Type: graph.InOut}},
			}))
		}
		ops = append(ops, Submit(TaskSpec{Label: "ar", Comm: &CommOp{Kind: AllreduceOp, Bytes: 8},
			Deps: []graph.Dep{{Key: 99, Type: graph.InOut}}}))
		return ops, 2
	}
	run := func() float64 {
		cl := NewCluster(3, DefaultNetConfig(), RankConfig{Cores: 3, Opts: graph.OptAll}, build)
		return cl.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic makespan: %v vs %v", a, b)
	}
}
