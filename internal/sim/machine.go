package sim

import (
	"fmt"

	"taskdep/internal/graph"
	"taskdep/internal/sched"
	"taskdep/internal/trace"
)

// DiscoveryCosts models the per-operation cost of TDG discovery,
// calibrated from the paper's Table 2 (see DESIGN.md §5.6): discovery
// time there is dominated by edge processing (~0.55 us to examine an
// attempted edge, ~0.30 us more to materialize it), plus ~1 us of task
// allocation/init and per-dependence processing. Persistent replay
// reduces a task to a firstprivate copy (~0.45 us measured in Table 2's
// replay iterations).
type DiscoveryCosts struct {
	TaskAlloc   float64
	PerDep      float64
	PerAttempt  float64
	PerCreate   float64
	ReplayTask  float64
	SchedPerTsk float64 // worker-side scheduling overhead charged per task
	CommPost    float64 // core time to post an MPI request from a task
}

// DefaultDiscoveryCosts returns the Table-2-calibrated defaults.
func DefaultDiscoveryCosts() DiscoveryCosts {
	return DiscoveryCosts{
		TaskAlloc:   1.0e-6,
		PerDep:      0.15e-6,
		PerAttempt:  0.55e-6,
		PerCreate:   0.30e-6,
		ReplayTask:  0.45e-6,
		SchedPerTsk: 0.5e-6,
		CommPost:    2.0e-6,
	}
}

// CommKind enumerates the communication operations tasks can perform.
type CommKind int

const (
	// SendOp posts a point-to-point send (MPI_Isend in a detached task).
	SendOp CommKind = iota
	// RecvOp posts a point-to-point receive.
	RecvOp
	// AllreduceOp posts a nonblocking allreduce.
	AllreduceOp
)

// CommOp attaches a communication action to a task: executing the task
// posts the operation; the task completes (detached) when the operation
// does.
type CommOp struct {
	Kind  CommKind
	Peer  int // send/recv peer rank
	Tag   int
	Bytes int
}

// TaskSpec describes one simulated task.
type TaskSpec struct {
	Label     string
	Deps      []graph.Dep
	Compute   float64   // pure compute seconds (no memory stalls)
	Footprint Footprint // blocks touched at execution
	Comm      *CommOp   // non-nil for communication tasks (detached)
}

// OpKind is a producer-script operation.
type OpKind int

const (
	// OpSubmit discovers one task.
	OpSubmit OpKind = iota
	// OpTaskwait blocks discovery until every discovered task completed
	// (used for the §4.1 taskwait-around-communications experiment).
	OpTaskwait
)

// Op is one step of a rank's per-iteration producer script.
type Op struct {
	Kind OpKind
	Spec TaskSpec
}

// Submit wraps a TaskSpec as a script op.
func Submit(spec TaskSpec) Op { return Op{Kind: OpSubmit, Spec: spec} }

// Taskwait returns a taskwait script op.
func Taskwait() Op { return Op{Kind: OpTaskwait} }

// RankConfig parametrizes one simulated MPI process.
type RankConfig struct {
	Cores int // including the producer core (core 0)
	Cache CacheConfig
	Costs DiscoveryCosts
	Opts  graph.Opt
	// Policy is the ready-task scheduling policy (depth-first default).
	Policy sched.Policy
	// Persistent enables the PTSG extension: iteration 0 records,
	// iterations >= 1 replay, with an implicit barrier per iteration.
	Persistent bool
	// DiscoverFirst suppresses execution until the whole program has
	// been discovered (Table 1's "non overlapped" configuration).
	DiscoverFirst bool
	// ThrottleTotal bounds live tasks; 0 = unbounded.
	ThrottleTotal int64
	// ThrottleReady bounds ready tasks; 0 = unbounded.
	ThrottleReady int64
	// DetailTrace records per-task boxes (Gantt, overlap metrics).
	DetailTrace bool
}

// producerMode tracks the discovery state machine of core 0.
type producerMode int

const (
	pmDiscovering producerMode = iota
	pmThrottled                // over threshold: consuming tasks
	pmBarrier                  // waiting live==0 (taskwait / iteration end)
	pmDone                     // whole program discovered
)

// Rank simulates one MPI process: a producer core plus worker cores over
// a cache hierarchy, discovering and executing the task graph in virtual
// time.
type Rank struct {
	ID  int
	eng *Engine
	cfg RankConfig

	g    *graph.Graph
	sch  *sched.Scheduler
	hier *Hierarchy
	prof *trace.Profile
	net  *Network

	ops   []Op // one iteration's script
	iter  int
	iters int
	opIdx int

	mode            producerMode
	afterWait       bool // producer parked waiting for work while throttled
	dispatchRq      bool
	recordingClosed bool
	replayDone      bool

	busy       []bool
	dramActive int

	// onQuiesce fires when the producer is done and the graph drained.
	onQuiesce func()
	finished  bool
	Makespan  float64
	peakLive  int64
}

// NewRank creates a rank bound to an engine and (optionally) a network.
// ops is the per-iteration producer script, repeated iters times.
func NewRank(id int, eng *Engine, net *Network, cfg RankConfig, ops []Op, iters int) *Rank {
	if cfg.Cores < 1 {
		cfg.Cores = 1
	}
	if cfg.Costs == (DiscoveryCosts{}) {
		cfg.Costs = DefaultDiscoveryCosts()
	}
	if cfg.Cache == (CacheConfig{}) {
		cfg.Cache = DefaultCacheConfig()
	}
	r := &Rank{
		ID:    id,
		eng:   eng,
		cfg:   cfg,
		sch:   sched.New(cfg.Policy, cfg.Cores),
		hier:  NewHierarchy(cfg.Cores, cfg.Cache),
		prof:  trace.New(cfg.Cores, cfg.DetailTrace),
		net:   net,
		ops:   ops,
		iters: iters,
		busy:  make([]bool, cfg.Cores),
	}
	r.g = graph.New(cfg.Opts, func(t *graph.Task) {
		r.sch.Push(-1, t)
		r.scheduleDispatch()
	})
	if net != nil {
		net.register(r)
	}
	return r
}

// Graph exposes the rank's dependency graph.
func (r *Rank) Graph() *graph.Graph { return r.g }

// Profile exposes the rank's profiler.
func (r *Rank) Profile() *trace.Profile { return r.prof }

// CacheStats exposes the cache counters.
func (r *Rank) CacheStats() CacheStats { return r.hier.Stats() }

// PeakLive returns the maximum number of co-existing (discovered but
// uncompleted) tasks observed, the quantity task throttling bounds.
func (r *Rank) PeakLive() int64 { return r.peakLive }

// Start schedules the rank's producer; onQuiesce fires once when the
// program is fully discovered and executed.
func (r *Rank) Start(onQuiesce func()) {
	r.onQuiesce = onQuiesce
	for c := 0; c < r.cfg.Cores; c++ {
		r.prof.SetState(c, trace.Idle, 0)
	}
	r.eng.At(0, func() {
		if r.cfg.Persistent && r.iters > 0 {
			r.g.BeginRecording()
		}
		r.produceNext()
	})
}

// scheduleDispatch coalesces dispatch requests into one event per time.
func (r *Rank) scheduleDispatch() {
	if r.dispatchRq {
		return
	}
	r.dispatchRq = true
	r.eng.After(0, r.dispatch)
}

// producerFree reports whether core 0 is available for task execution.
func (r *Rank) producerFree() bool {
	return r.mode == pmDone || r.mode == pmBarrier
}

// dispatch hands ready tasks to idle cores.
func (r *Rank) dispatch() {
	r.dispatchRq = false
	if r.cfg.DiscoverFirst && r.mode != pmDone {
		return
	}
	for c := 0; c < r.cfg.Cores; c++ {
		if r.busy[c] {
			continue
		}
		if c == 0 && !r.producerFree() {
			continue
		}
		t := r.sch.Pop(c)
		if t == nil {
			continue
		}
		r.startTask(c, t)
	}
	// Throttled producer parked for lack of work: wake it if work
	// appeared (it will re-pop itself).
	if r.afterWait && r.sch.Pending() > 0 {
		r.afterWait = false
		r.eng.After(0, r.produceNext)
	}
	r.maybeQuiesce()
}

// throttled reports whether discovery must pause.
func (r *Rank) throttled() bool {
	if r.cfg.ThrottleTotal > 0 && r.g.Live() >= r.cfg.ThrottleTotal {
		return true
	}
	if r.cfg.ThrottleReady > 0 && r.g.ReadyCount() >= r.cfg.ThrottleReady {
		return true
	}
	return false
}

// produceNext advances the producer state machine by one step.
func (r *Rank) produceNext() {
	now := r.eng.Now()
	// Discovery is runtime time on core 0: overhead if work exists,
	// idle otherwise (§2.3.1 breakdown definitions).
	if r.g.ReadyCount() > 0 {
		r.prof.SetState(0, trace.Overhead, now)
	} else {
		r.prof.SetState(0, trace.Idle, now)
	}

	if r.opIdx >= len(r.ops) {
		r.endOfIteration()
		return
	}
	if r.throttled() {
		r.mode = pmThrottled
		t := r.sch.Pop(0)
		if t == nil {
			// Nothing to consume: park until work appears.
			r.afterWait = true
			return
		}
		r.startTask(0, t)
		return
	}
	r.mode = pmDiscovering
	op := r.ops[r.opIdx]
	r.opIdx++

	switch op.Kind {
	case OpTaskwait:
		r.g.Flush()
		if r.g.Live() > 0 {
			r.mode = pmBarrier
			r.scheduleDispatch() // core 0 may execute during the wait
			return
		}
		r.eng.After(0, r.produceNext)
	case OpSubmit:
		cost := r.doSubmit(op.Spec)
		if l := r.g.Live(); l > r.peakLive {
			r.peakLive = l
		}
		r.prof.TaskCreated(now + cost)
		r.eng.After(cost, r.produceNext)
	}
}

// doSubmit performs the graph operation for spec and returns its modeled
// discovery cost.
func (r *Rank) doSubmit(spec TaskSpec) float64 {
	cs := &r.cfg.Costs
	if r.cfg.Persistent && r.iter > 0 {
		r.g.Replay(r.iter, nil, nil, nil)
		return cs.ReplayTask
	}
	st0 := r.g.Stats()
	sp := spec // copy; Data must outlive the call
	var t *graph.Task
	if spec.Comm != nil {
		t = r.g.SubmitDetached(spec.Label, spec.Deps, nil, r.iter)
	} else {
		t = r.g.Submit(spec.Label, spec.Deps, nil, r.iter)
	}
	t.Data = &sp
	st1 := r.g.Stats()
	return cs.TaskAlloc +
		cs.PerDep*float64(len(spec.Deps)) +
		cs.PerAttempt*float64(st1.EdgesAttempted-st0.EdgesAttempted) +
		cs.PerCreate*float64(st1.EdgesCreated-st0.EdgesCreated)
}

// endOfIteration handles the boundary after the last op of an iteration.
func (r *Rank) endOfIteration() {
	if r.cfg.Persistent {
		// Implicit barrier: every task of the iteration must complete
		// before re-instancing (paper §3.2).
		if r.iter == 0 && !r.recordingClosed {
			r.recordingClosed = true
			r.g.Flush()
			r.g.EndRecording()
		}
		if r.iter > 0 && !r.replayDone {
			r.replayDone = true
			if err := r.g.FinishReplay(); err != nil {
				panic(fmt.Sprintf("sim: finish replay: %v", err))
			}
		}
		if r.g.Live() > 0 {
			r.mode = pmBarrier
			r.scheduleDispatch()
			return
		}
		r.prof.IterationEnd(r.eng.Now())
		r.iter++
		if r.iter >= r.iters {
			r.g.EndPersistent()
			r.mode = pmDone
			r.scheduleDispatch()
			return
		}
		if err := r.g.BeginReplay(); err != nil {
			panic(fmt.Sprintf("sim: replay: %v", err))
		}
		r.replayDone = false
		r.opIdx = 0
		r.eng.After(0, r.produceNext)
		return
	}
	// Non-persistent: iterations chain through data dependences with no
	// barrier; discovery continues straight into the next iteration.
	r.prof.IterationEnd(r.eng.Now())
	r.iter++
	if r.iter >= r.iters {
		r.g.Flush()
		r.mode = pmDone
		r.scheduleDispatch()
		return
	}
	r.opIdx = 0
	r.eng.After(0, r.produceNext)
}

// barrierCheck resumes a barrier-parked producer once the graph drains.
func (r *Rank) barrierCheck() {
	if r.mode == pmBarrier && r.g.Live() == 0 {
		if r.cfg.Persistent && r.opIdx >= len(r.ops) {
			r.mode = pmDiscovering
			r.eng.After(0, r.endOfIterationResume)
			return
		}
		r.mode = pmDiscovering
		r.eng.After(0, r.produceNext)
	}
}

// endOfIterationResume re-enters endOfIteration after its barrier.
func (r *Rank) endOfIterationResume() { r.endOfIteration() }

// taskIter returns the iteration a task was discovered in (tasks carry
// it as FirstPrivate so Gantt colors reflect discovery iterations even
// when the producer runs ahead of execution).
func taskIter(t *graph.Task, fallback int) int {
	if it, ok := t.FirstPrivate.(int); ok {
		return it
	}
	return fallback
}

// startTask begins executing t on core c.
func (r *Rank) startTask(c int, t *graph.Task) {
	now := r.eng.Now()
	r.busy[c] = true
	r.g.Start(t)
	cs := &r.cfg.Costs

	if t.Redirect {
		// Empty optimization-(c) node: costs one scheduling slot.
		r.eng.After(cs.SchedPerTsk, func() { r.finishTask(c, t, now, now) })
		return
	}
	spec, _ := t.Data.(*TaskSpec)
	if spec == nil {
		spec = &TaskSpec{}
	}
	r.prof.SetState(c, trace.Overhead, now)
	workStart := now + cs.SchedPerTsk

	if spec.Comm != nil {
		// Detached communication task: the body does any local work
		// (e.g. packing fused with the post), then posts the request.
		r.prof.SetState(c, trace.Work, workStart)
		postDone := workStart + cs.CommPost + spec.Compute
		r.eng.At(postDone, func() {
			r.prof.SetState(c, trace.Idle, postDone)
			r.busy[c] = false
			r.postComm(c, t, spec)
			if c == 0 && r.mode == pmThrottled {
				r.produceNext()
			} else {
				r.scheduleDispatch()
			}
		})
		if r.cfg.DetailTrace {
			r.prof.TaskScheduled(trace.TaskRecord{
				TaskID: t.ID, Label: spec.Label, Worker: c,
				Iter: taskIter(t, r.iter), Start: workStart, End: postDone,
			})
		}
		return
	}

	// Compute task: evaluate the memory model.
	memTime := 0.0
	dramMisses := 0
	for _, b := range spec.Footprint {
		cost, dram := r.hier.Access(c, b)
		if dram {
			factor := 1 + r.cfg.Cache.ContentionAlpha*float64(maxInt(0, r.dramActive))
			cost *= factor
			dramMisses++
		}
		memTime += cost
	}
	if dramMisses > 0 {
		r.dramActive++
	}
	dur := spec.Compute + memTime
	r.prof.SetState(c, trace.Work, workStart)
	end := workStart + dur
	r.eng.At(end, func() {
		if dramMisses > 0 {
			r.dramActive--
		}
		if r.cfg.DetailTrace {
			r.prof.TaskScheduled(trace.TaskRecord{
				TaskID: t.ID, Label: spec.Label, Worker: c,
				Iter: taskIter(t, r.iter), Start: workStart, End: end,
			})
		}
		r.finishTask(c, t, workStart, end)
	})
}

// finishTask completes t on core c and reschedules.
func (r *Rank) finishTask(c int, t *graph.Task, workStart, end float64) {
	now := r.eng.Now()
	r.prof.SetState(c, trace.Idle, now)
	r.busy[c] = false
	released := r.g.Complete(t)
	for _, s := range released {
		r.sch.Push(c, s)
	}
	r.barrierCheck()
	if c == 0 && r.mode == pmThrottled {
		r.produceNext()
		return
	}
	r.scheduleDispatch()
}

// completeDetached finishes a communication task when its request
// completes (network callback).
func (r *Rank) completeDetached(t *graph.Task) {
	released := r.g.Complete(t)
	for _, s := range released {
		r.sch.Push(-1, s)
	}
	r.barrierCheck()
	r.scheduleDispatch()
}

// postComm hands the operation to the network.
func (r *Rank) postComm(c int, t *graph.Task, spec *TaskSpec) {
	if r.net == nil {
		// No network: treat as immediately complete (single-rank runs
		// that still include comm placeholders).
		r.completeDetached(t)
		return
	}
	op := spec.Comm
	done := func() { r.completeDetached(t) }
	switch op.Kind {
	case SendOp:
		r.net.PostSend(r.ID, op.Peer, op.Tag, op.Bytes, r.prof, done)
	case RecvOp:
		r.net.PostRecv(r.ID, op.Peer, op.Tag, op.Bytes, r.prof, done)
	case AllreduceOp:
		r.net.PostAllreduce(r.ID, op.Bytes, r.prof, done)
	}
}

// maybeQuiesce fires onQuiesce once everything drained.
func (r *Rank) maybeQuiesce() {
	if r.finished || r.mode != pmDone {
		return
	}
	if r.g.Live() != 0 || r.sch.Pending() != 0 {
		return
	}
	for _, b := range r.busy {
		if b {
			return
		}
	}
	r.finished = true
	r.Makespan = r.eng.Now()
	r.prof.Finish(r.Makespan)
	if r.onQuiesce != nil {
		r.onQuiesce()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
