package sim

import (
	"math"
	"testing"

	"taskdep/internal/graph"
)

func TestNetworkFIFOMatchingSameTag(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 2, DefaultNetConfig())
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		eng.At(float64(i)*1e-6, func() {
			net.PostSend(0, 1, 5, 100, nil, func() {})
		})
		_ = i
	}
	for i := 0; i < 3; i++ {
		i := i
		eng.At(10e-6+float64(i)*1e-6, func() {
			net.PostRecv(1, 0, 5, 100, nil, func() { order = append(order, i) })
		})
	}
	eng.Run()
	if len(order) != 3 {
		t.Fatalf("completions = %d", len(order))
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("recv completion order = %v", order)
		}
	}
}

func TestNetworkInterleavedAllreduces(t *testing.T) {
	eng := NewEngine()
	net := NewNetwork(eng, 2, DefaultNetConfig())
	var done []string
	// Rank 0 posts two allreduces back to back; rank 1 posts its two
	// later. Instances must match by per-rank order: first with first.
	eng.At(0, func() {
		net.PostAllreduce(0, 8, nil, func() { done = append(done, "r0-first") })
		net.PostAllreduce(0, 8, nil, func() { done = append(done, "r0-second") })
	})
	eng.At(1e-3, func() {
		net.PostAllreduce(1, 8, nil, func() { done = append(done, "r1-first") })
	})
	eng.At(2e-3, func() {
		net.PostAllreduce(1, 8, nil, func() { done = append(done, "r1-second") })
	})
	eng.Run()
	if len(done) != 4 {
		t.Fatalf("completions = %v", done)
	}
	// First instance completes at ~1ms, second at ~2ms.
	if done[0][3:] != "first" && done[1][3:] != "first" {
		t.Fatalf("order = %v", done)
	}
}

func TestClusterPanicsOnMismatchedComm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched communication did not panic")
		}
	}()
	// Rank 0 receives a message nobody sends: the cluster can never
	// quiesce and must report a deadlock.
	build := func(rk int) ([]Op, int) {
		if rk == 0 {
			return []Op{Submit(TaskSpec{
				Label: "recv", Comm: &CommOp{Kind: RecvOp, Peer: 1, Tag: 9, Bytes: 8},
			})}, 1
		}
		return []Op{Submit(TaskSpec{Label: "noop", Compute: 1e-6})}, 1
	}
	cl := NewCluster(2, DefaultNetConfig(), RankConfig{Cores: 1}, build)
	cl.Run()
}

func TestDRAMContentionInflatesParallelWork(t *testing.T) {
	// The same DRAM-heavy footprint executed by many cores at once must
	// cost more per task than executed alone (Fig. 2d's inflation).
	mk := func(cores, tasks int) float64 {
		var ops []Op
		for i := 0; i < tasks; i++ {
			ops = append(ops, Submit(TaskSpec{
				Label:     "mem",
				Deps:      []graph.Dep{{Key: graph.Key(i), Type: graph.Out}},
				Footprint: BlocksOf(uint64(1000+i), 0, 512<<10, 1<<10), // 512 KiB, distinct arrays
			}))
		}
		eng := NewEngine()
		r := NewRank(0, eng, nil, RankConfig{Cores: cores}, ops, 1)
		r.Start(nil)
		eng.Run()
		return r.Profile().Breakdown().Work / float64(tasks)
	}
	serialPerTask := mk(2, 8) // 1 worker at a time (core0 discovers, then helps)
	parallelPerTask := mk(16, 8)
	if parallelPerTask <= serialPerTask {
		t.Fatalf("no contention inflation: parallel %v vs serial %v", parallelPerTask, serialPerTask)
	}
}

func TestDiscoverFirstWithPersistentIterations(t *testing.T) {
	ops := chainOps(16, 100e-6)
	r := runSingle(RankConfig{Cores: 2, Persistent: true, DiscoverFirst: false, Opts: graph.OptAll}, ops, 3)
	if got := r.Graph().Stats().ReplayedTasks; got != 32 {
		t.Fatalf("replayed = %d, want 32", got)
	}
}

func TestThrottledProducerConsumesCommTasks(t *testing.T) {
	// A throttled producer that pops a communication task must post it
	// and resume discovery (regression guard for the core-0 comm path).
	var ops []Op
	for i := 0; i < 50; i++ {
		ops = append(ops, Submit(TaskSpec{
			Label: "alr", Comm: &CommOp{Kind: AllreduceOp, Bytes: 8},
			Deps: []graph.Dep{{Key: graph.Key(i), Type: graph.Out}},
		}))
	}
	build := func(rk int) ([]Op, int) { return ops, 1 }
	cl := NewCluster(1, DefaultNetConfig(), RankConfig{Cores: 1, ThrottleTotal: 4}, build)
	end := cl.Run()
	if end <= 0 {
		t.Fatalf("no progress")
	}
}

func TestCacheContentionFactorAppliedOnlyToDRAM(t *testing.T) {
	cfg := DefaultCacheConfig()
	h := NewHierarchy(1, cfg)
	// Warm a block, then re-access: cost must be exactly L1Time with no
	// contention scaling applied by Access (scaling is the rank's job).
	h.Access(0, 42)
	c, dram := h.Access(0, 42)
	if dram || c != cfg.L1Time {
		t.Fatalf("hit cost %v dram=%v", c, dram)
	}
}

func TestStallAccountingMonotone(t *testing.T) {
	h := NewHierarchy(1, DefaultCacheConfig())
	var last float64
	for i := 0; i < 100; i++ {
		h.Access(0, BlockID(i))
		st := h.Stats()
		if st.TotalStalls < last {
			t.Fatalf("stall counter went backwards")
		}
		last = st.TotalStalls
		if st.TotalStalls < st.L3Stalls || st.TotalStalls < st.L2Stalls {
			t.Fatalf("total stalls below a component: %+v", st)
		}
	}
}

func TestPeakLiveTracked(t *testing.T) {
	ops := wideOps(64, 1e-3)
	r := runSingle(RankConfig{Cores: 2}, ops, 1)
	if r.PeakLive() < 8 {
		t.Fatalf("peak live = %d, expected a buildup", r.PeakLive())
	}
	r2 := runSingle(RankConfig{Cores: 2, ThrottleTotal: 4}, ops, 1)
	if r2.PeakLive() > 4 {
		t.Fatalf("throttled peak live = %d", r2.PeakLive())
	}
}

func TestTransferTimeModel(t *testing.T) {
	cfg := DefaultNetConfig()
	small := cfg.transfer(8)
	big := cfg.transfer(1 << 20)
	if small <= cfg.Latency || big <= small {
		t.Fatalf("transfer model broken: %v %v", small, big)
	}
	if math.Abs(big-(cfg.Latency+float64(1<<20)/cfg.Bandwidth)) > 1e-12 {
		t.Fatalf("transfer formula wrong")
	}
}
