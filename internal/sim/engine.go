// Package sim is the discrete-event machine simulator used to reproduce
// the paper's measurements that depend on hardware behaviour: cache
// misses and stall cycles per level (Fig. 2e/f, Table 1), work-time
// inflation under DRAM contention (Fig. 2d), discovery-bound executions
// (Figs. 1, 2c, 6), communication overlap (Figs. 7, 9) and weak/strong
// scaling (Table 3).
//
// A simulation advances a virtual clock through an event heap. Each MPI
// rank is a Rank: one producer core discovering the task graph at modeled
// per-task/per-edge costs (the paper's TDG discovery speed), plus worker
// cores executing tasks whose duration comes from a compute + memory cost
// model evaluated against an L1/L2/L3 LRU cache hierarchy. Ranks are
// coupled by a network model with eager/rendezvous point-to-point
// transfers and tree-based collectives.
package sim

import "container/heap"

// event is a scheduled callback.
type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Engine is a deterministic discrete-event loop. Ties in time are broken
// by scheduling order, so identical inputs give identical timelines.
type Engine struct {
	now  float64
	seq  int64
	heap eventHeap
}

// NewEngine creates an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn at absolute time t (>= Now).
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.heap, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run processes events until the heap is empty and returns the final
// time.
func (e *Engine) Run() float64 {
	for e.heap.Len() > 0 {
		ev := heap.Pop(&e.heap).(event)
		e.now = ev.t
		ev.fn()
	}
	return e.now
}

// Step processes a single event; reports false when none remain.
func (e *Engine) Step() bool {
	if e.heap.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	e.now = ev.t
	ev.fn()
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.heap.Len() }
