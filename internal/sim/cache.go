package sim

// BlockID identifies one cache-model block (a fixed-size fraction of an
// application array). The paper measured cache behaviour with PAPI at
// line granularity; the model works at block granularity (default 1 KiB),
// which preserves reuse-distance behaviour at simulation-tractable cost.
type BlockID uint64

// lruCache is a bytes-capacity LRU set of blocks (doubly-linked list +
// map), one per cache level instance.
type lruCache struct {
	capacity  int64
	used      int64
	blockSize int64
	nodes     map[BlockID]*lruNode
	head      *lruNode // most recent
	tail      *lruNode // least recent
}

type lruNode struct {
	id         BlockID
	prev, next *lruNode
}

func newLRU(capacity, blockSize int64) *lruCache {
	return &lruCache{capacity: capacity, blockSize: blockSize, nodes: make(map[BlockID]*lruNode)}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) pushFront(n *lruNode) {
	n.next = c.head
	n.prev = nil
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// touch accesses block id: returns true on hit. On miss the block is
// inserted, evicting LRU blocks as needed.
func (c *lruCache) touch(id BlockID) bool {
	if n, ok := c.nodes[id]; ok {
		if c.head != n {
			c.unlink(n)
			c.pushFront(n)
		}
		return true
	}
	n := &lruNode{id: id}
	c.nodes[id] = n
	c.pushFront(n)
	c.used += c.blockSize
	for c.used > c.capacity && c.tail != nil {
		ev := c.tail
		c.unlink(ev)
		delete(c.nodes, ev.id)
		c.used -= c.blockSize
	}
	return false
}

// contains reports residency without changing recency.
func (c *lruCache) contains(id BlockID) bool {
	_, ok := c.nodes[id]
	return ok
}

// CacheConfig sizes the modeled hierarchy. Defaults approximate a
// Skylake 8168 socket scaled to simulation problem sizes; see
// EXPERIMENTS.md for the scaling argument.
type CacheConfig struct {
	BlockBytes int64 // model granularity
	L1Bytes    int64 // per core
	L2Bytes    int64 // per core
	L3Bytes    int64 // shared per rank

	// Per-block access costs (seconds) by the level that served it.
	L1Time   float64
	L2Time   float64
	L3Time   float64
	DRAMTime float64

	// Stall cycles charged per miss at each level (for Fig. 2f).
	CPUGHz float64

	// ContentionAlpha scales the DRAM penalty with the number of other
	// concurrently DRAM-active cores: penalty *= 1 + alpha*(n-1).
	ContentionAlpha float64
}

// DefaultCacheConfig returns the calibrated model defaults.
func DefaultCacheConfig() CacheConfig {
	// Per-block times model effective (not peak) bandwidth: LULESH-style
	// indirection reads defeat prefetching, so a 1 KiB block from DRAM
	// costs ~600 ns (~1.7 GB/s effective per core), with cache hits
	// proportionally cheaper. These put a memory-bound kernel at roughly
	// 2/3 memory time, matching the paper's work-time-inflation range.
	return CacheConfig{
		BlockBytes:      1 << 10,
		L1Bytes:         8 << 10,
		L2Bytes:         128 << 10,
		L3Bytes:         3 << 20,
		L1Time:          20e-9,
		L2Time:          60e-9,
		L3Time:          150e-9,
		DRAMTime:        600e-9,
		CPUGHz:          2.7,
		ContentionAlpha: 0.08,
	}
}

// CacheStats mirrors the PAPI counters the paper reports: data-cache
// misses and miss-induced stall cycles per level.
type CacheStats struct {
	Accesses int64
	L1DCM    int64
	L2DCM    int64
	L3CM     int64
	// StallCycles per level (time above a hit in that level, in cycles).
	L1Stalls    float64
	L2Stalls    float64
	L3Stalls    float64
	TotalStalls float64
}

// Add accumulates other into s.
func (s *CacheStats) Add(o CacheStats) {
	s.Accesses += o.Accesses
	s.L1DCM += o.L1DCM
	s.L2DCM += o.L2DCM
	s.L3CM += o.L3CM
	s.L1Stalls += o.L1Stalls
	s.L2Stalls += o.L2Stalls
	s.L3Stalls += o.L3Stalls
	s.TotalStalls += o.TotalStalls
}

// Hierarchy models the caches of one rank: private L1/L2 per core and a
// shared L3.
type Hierarchy struct {
	cfg   CacheConfig
	l1    []*lruCache
	l2    []*lruCache
	l3    *lruCache
	stats CacheStats
}

// NewHierarchy builds the hierarchy for cores cores.
func NewHierarchy(cores int, cfg CacheConfig) *Hierarchy {
	h := &Hierarchy{cfg: cfg, l3: newLRU(cfg.L3Bytes, cfg.BlockBytes)}
	for i := 0; i < cores; i++ {
		h.l1 = append(h.l1, newLRU(cfg.L1Bytes, cfg.BlockBytes))
		h.l2 = append(h.l2, newLRU(cfg.L2Bytes, cfg.BlockBytes))
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() CacheConfig { return h.cfg }

// Stats returns the accumulated counters.
func (h *Hierarchy) Stats() CacheStats { return h.stats }

// Access touches one block from core, returning the time cost of the
// access (excluding contention scaling, applied by the caller for DRAM
// fills). Inclusive hierarchy: a fill installs the block at every level.
func (h *Hierarchy) Access(core int, id BlockID) (cost float64, dram bool) {
	cfg := &h.cfg
	h.stats.Accesses++
	if h.l1[core].touch(id) {
		return cfg.L1Time, false
	}
	h.stats.L1DCM++
	if h.l2[core].touch(id) {
		h.stats.L1Stalls += (cfg.L2Time - cfg.L1Time) * cfg.CPUGHz * 1e9
		h.stats.TotalStalls += (cfg.L2Time - cfg.L1Time) * cfg.CPUGHz * 1e9
		return cfg.L2Time, false
	}
	h.stats.L2DCM++
	if h.l3.touch(id) {
		st := (cfg.L3Time - cfg.L1Time) * cfg.CPUGHz * 1e9
		h.stats.L2Stalls += st
		h.stats.TotalStalls += st
		return cfg.L3Time, false
	}
	h.stats.L3CM++
	st := (cfg.DRAMTime - cfg.L1Time) * cfg.CPUGHz * 1e9
	h.stats.L3Stalls += st
	h.stats.TotalStalls += st
	return cfg.DRAMTime, true
}

// Footprint is the set of blocks one task touches. Blocks are visited in
// order; repeated visits within a task hit L1.
type Footprint []BlockID

// BlocksOf converts a byte range of a named array region into block IDs.
// arrayBase namespaces arrays so different fields never alias.
func BlocksOf(arrayBase uint64, startByte, endByte int64, blockBytes int64) Footprint {
	if endByte <= startByte {
		return nil
	}
	first := startByte / blockBytes
	last := (endByte - 1) / blockBytes
	fp := make(Footprint, 0, last-first+1)
	for b := first; b <= last; b++ {
		fp = append(fp, BlockID(arrayBase<<40|uint64(b)))
	}
	return fp
}
