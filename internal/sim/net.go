package sim

import (
	"math"
	"sync/atomic"

	"taskdep/internal/trace"
)

// NetConfig models the interconnect (the paper's Atos BXI V2 with Open
// MPI 4.1.4): eager point-to-point below a size threshold, rendezvous
// above, and binomial-tree collectives.
type NetConfig struct {
	// Latency is the one-way message latency in seconds.
	Latency float64
	// Bandwidth in bytes/second.
	Bandwidth float64
	// EagerThreshold in bytes; messages >= it use rendezvous.
	EagerThreshold int
	// RendezvousRTT is the extra handshake time for rendezvous.
	RendezvousRTT float64
}

// DefaultNetConfig returns BXI-like defaults (1.5 us latency, 12 GB/s).
func DefaultNetConfig() NetConfig {
	return NetConfig{
		Latency:        1.5e-6,
		Bandwidth:      12e9,
		EagerThreshold: 64 << 10,
		RendezvousRTT:  4e-6,
	}
}

// transfer returns the wire time of n bytes.
func (c *NetConfig) transfer(n int) float64 {
	return c.Latency + float64(n)/c.Bandwidth
}

// netMsg is a posted send awaiting its receive.
type netMsg struct {
	src, tag int
	bytes    int
	postT    float64
	eager    bool
	arrival  float64 // eager: when payload lands at dst
	// sendDoneFn schedules the sender-side completion at the match time
	// (rendezvous protocol only).
	sendDoneFn func(at float64)
}

// netRecv is a posted receive awaiting its send.
type netRecv struct {
	src, tag int
	postT    float64
	done     func()
}

// netColl is one in-flight allreduce instance.
type netColl struct {
	count   int
	maxPost float64
	bytes   int
	dones   []func()
	profs   []*trace.Profile
	reqIDs  []int64
}

// Network couples simulated ranks in virtual time.
type Network struct {
	eng   *Engine
	cfg   NetConfig
	size  int
	inbox []map[int][]netMsg  // per dst: tag -> pending msgs (FIFO)
	recvq []map[int][]netRecv // per dst: tag -> pending recvs (FIFO)

	collSeq []int64
	colls   map[int64]*netColl

	reqID atomic.Int64
}

// NewNetwork creates a network for size ranks on the engine.
func NewNetwork(eng *Engine, size int, cfg NetConfig) *Network {
	n := &Network{
		eng:     eng,
		cfg:     cfg,
		size:    size,
		inbox:   make([]map[int][]netMsg, size),
		recvq:   make([]map[int][]netRecv, size),
		collSeq: make([]int64, size),
		colls:   make(map[int64]*netColl),
	}
	for i := 0; i < size; i++ {
		n.inbox[i] = make(map[int][]netMsg)
		n.recvq[i] = make(map[int][]netRecv)
	}
	return n
}

func (n *Network) register(r *Rank) {
	if r.ID < 0 || r.ID >= n.size {
		panic("sim: rank id outside network size")
	}
}

// key combines src and tag for matching (no wildcards in the DES apps).
func key(src, tag int) int { return src<<20 | (tag & 0xfffff) }

// PostSend posts a point-to-point send from src to dst. For eager
// messages, done fires after the local injection overhead; the payload
// arrives at dst after the wire time. For rendezvous, done fires at the
// match + transfer time (both sides complete together).
func (n *Network) PostSend(src, dst, tag, bytes int, prof *trace.Profile, done func()) {
	now := n.eng.Now()
	reqID := n.reqID.Add(1)
	if prof != nil {
		prof.CommPost(reqID, trace.Send, bytes, now)
	}
	wrapped := func(at float64) {
		n.eng.At(at, func() {
			if prof != nil {
				prof.CommComplete(reqID, n.eng.Now())
			}
			done()
		})
	}
	eager := bytes < n.cfg.EagerThreshold
	k := key(src, tag)
	// Match an already-posted receive.
	if q := n.recvq[dst][k]; len(q) > 0 {
		rv := q[0]
		n.recvq[dst][k] = q[1:]
		var tDone float64
		if eager {
			tDone = now + n.cfg.transfer(bytes)
			wrapped(now + n.cfg.Latency) // local completion
		} else {
			tDone = math.Max(now, rv.postT) + n.cfg.RendezvousRTT + n.cfg.transfer(bytes)
			wrapped(tDone)
		}
		n.eng.At(tDone, rv.done)
		return
	}
	m := netMsg{src: src, tag: tag, bytes: bytes, postT: now, eager: eager}
	if eager {
		m.arrival = now + n.cfg.transfer(bytes)
		wrapped(now + n.cfg.Latency)
	} else {
		m.sendDoneFn = wrapped
	}
	n.inbox[dst][k] = append(n.inbox[dst][k], m)
}

// PostRecv posts a receive at dst from src with tag.
func (n *Network) PostRecv(dst, src, tag, bytes int, prof *trace.Profile, done func()) {
	now := n.eng.Now()
	reqID := n.reqID.Add(1)
	if prof != nil {
		prof.CommPost(reqID, trace.Recv, bytes, now)
	}
	fire := func(at float64) {
		n.eng.At(at, func() {
			if prof != nil {
				prof.CommComplete(reqID, n.eng.Now())
			}
			done()
		})
	}
	k := key(src, tag)
	if q := n.inbox[dst][k]; len(q) > 0 {
		m := q[0]
		n.inbox[dst][k] = q[1:]
		if m.eager {
			fire(math.Max(now, m.arrival))
		} else {
			tDone := math.Max(now, m.postT) + n.cfg.RendezvousRTT + n.cfg.transfer(m.bytes)
			fire(tDone)
			if m.sendDoneFn != nil {
				m.sendDoneFn(tDone)
			}
		}
		return
	}
	n.recvq[dst][k] = append(n.recvq[dst][k], netRecv{src: src, tag: tag, postT: now, done: func() {
		fire(n.eng.Now())
	}})
}

// PostAllreduce posts rank's contribution to the current allreduce
// instance (matched by per-rank call order). All callbacks fire at
// maxPost + 2*ceil(log2 P) tree hops, the classic binomial-tree model.
func (n *Network) PostAllreduce(rank, bytes int, prof *trace.Profile, done func()) {
	now := n.eng.Now()
	reqID := n.reqID.Add(1)
	if prof != nil {
		prof.CommPost(reqID, trace.Collective, bytes, now)
	}
	n.collSeq[rank]++
	seq := n.collSeq[rank]
	coll := n.colls[seq]
	if coll == nil {
		coll = &netColl{bytes: bytes}
		n.colls[seq] = coll
	}
	coll.count++
	if now > coll.maxPost {
		coll.maxPost = now
	}
	coll.dones = append(coll.dones, done)
	coll.profs = append(coll.profs, prof)
	coll.reqIDs = append(coll.reqIDs, reqID)
	if coll.count == n.size {
		delete(n.colls, seq)
		hops := 2 * math.Ceil(math.Log2(float64(n.size)))
		if n.size == 1 {
			hops = 0
		}
		tDone := coll.maxPost + hops*n.cfg.transfer(coll.bytes)
		for i, d := range coll.dones {
			i, d := i, d
			n.eng.At(tDone, func() {
				if coll.profs[i] != nil {
					coll.profs[i].CommComplete(coll.reqIDs[i], n.eng.Now())
				}
				d()
			})
		}
	}
}

// Cluster runs a set of ranks coupled by a network to completion.
type Cluster struct {
	Engine *Engine
	Net    *Network
	Ranks  []*Rank
}

// NewCluster builds size ranks with identical config and per-rank
// scripts provided by build(rank) (ops, iters).
func NewCluster(size int, netCfg NetConfig, rankCfg RankConfig, build func(rank int) ([]Op, int)) *Cluster {
	eng := NewEngine()
	var net *Network
	if size > 1 {
		net = NewNetwork(eng, size, netCfg)
	}
	cl := &Cluster{Engine: eng, Net: net}
	for rk := 0; rk < size; rk++ {
		ops, iters := build(rk)
		cl.Ranks = append(cl.Ranks, NewRank(rk, eng, net, rankCfg, ops, iters))
	}
	return cl
}

// Run executes the whole cluster and returns the global makespan.
func (cl *Cluster) Run() float64 {
	remaining := len(cl.Ranks)
	for _, r := range cl.Ranks {
		r.Start(func() { remaining-- })
	}
	end := cl.Engine.Run()
	if remaining != 0 {
		panic("sim: cluster deadlock: ranks did not quiesce (mismatched communication?)")
	}
	return end
}
