package mpi

// Abort-propagation tests: a failed rank must error out its peers'
// pending communication instead of leaving them deadlocked against a
// rank that will never post.

import (
	"errors"
	"testing"
	"time"
)

// TestAbortErrorsPendingRendezvousSend is the deadlock scenario the
// abort path exists for: a rendezvous send whose matching receive will
// never be posted (the receiver failed) completes with an error instead
// of blocking forever.
func TestAbortErrorsPendingRendezvousSend(t *testing.T) {
	w := NewWorld(2)
	w.SetEagerThreshold(4)
	cause := errors.New("rank 1 task failure")
	big := make([]float64, 64)
	r := w.Comm(0).Isend(big, 1, 3)
	time.Sleep(5 * time.Millisecond)
	if r.Done() {
		t.Fatalf("rendezvous send completed with no receiver")
	}
	w.Comm(1).Abort(cause) // rank 1 dies before posting its recv
	done := make(chan error, 1)
	go func() { done <- r.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) || !errors.Is(err, cause) {
			t.Fatalf("Wait = %v, want ErrAborted wrapping the cause", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Wait deadlocked despite the abort")
	}
}

// TestAbortErrorsPostedRecv: a posted receive with no sender errors out.
func TestAbortErrorsPostedRecv(t *testing.T) {
	w := NewWorld(2)
	buf := make([]float64, 4)
	r := w.Comm(1).Irecv(buf, 0, 9)
	w.Abort(nil)
	if err := r.Wait(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait = %v, want ErrAborted", err)
	}
}

// TestAbortErrorsHalfGatheredCollective: an allreduce some ranks never
// join completes with the abort error on the ranks that did.
func TestAbortErrorsHalfGatheredCollective(t *testing.T) {
	w := NewWorld(3)
	in, out := []float64{1}, make([]float64, 1)
	r := w.Comm(0).Iallreduce(Sum, in, out)
	w.Abort(errors.New("peer gone"))
	if err := r.Wait(); !errors.Is(err, ErrAborted) {
		t.Fatalf("Wait = %v, want ErrAborted", err)
	}
}

// TestPostAfterAbortFailsImmediately: communication posted after the
// abort completes at once with the error — no new deadlocks form.
func TestPostAfterAbortFailsImmediately(t *testing.T) {
	w := NewWorld(2)
	w.SetEagerThreshold(1)
	cause := errors.New("down")
	w.Abort(cause)
	if !w.Aborted() {
		t.Fatalf("Aborted() false after Abort")
	}
	r := w.Comm(0).Isend(make([]float64, 8), 1, 0)
	if !r.Done() {
		t.Fatalf("post-abort send did not complete immediately")
	}
	if err := r.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want the abort cause", err)
	}
	buf := make([]float64, 1)
	if err := w.Comm(1).Irecv(buf, 0, 0).Wait(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-abort recv Wait = %v", err)
	}
}

// TestAbortIdempotentFirstCauseWins: repeated aborts keep the first
// cause.
func TestAbortIdempotentFirstCauseWins(t *testing.T) {
	w := NewWorld(2)
	first, second := errors.New("first"), errors.New("second")
	w.Abort(first)
	w.Abort(second)
	r := w.Comm(0).Irecv(make([]float64, 1), 1, 0)
	err := r.Wait()
	if !errors.Is(err, first) {
		t.Fatalf("Wait = %v, want the first cause", err)
	}
	if errors.Is(err, second) {
		t.Fatalf("second cause overwrote the first: %v", err)
	}
}

// TestAbortFiresOnComplete: detached-task events bridged via OnComplete
// must still fire when the request completes with an error, or the task
// graph would never drain.
func TestAbortFiresOnComplete(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(0).Irecv(make([]float64, 1), 1, 4)
	fired := make(chan struct{})
	r.OnComplete(func() { close(fired) })
	w.Abort(nil)
	select {
	case <-fired:
	case <-time.After(10 * time.Second):
		t.Fatalf("OnComplete did not fire on error completion")
	}
}
