// Package mpi implements the message-passing substrate of the
// reproduction: an in-process MPI subset where ranks are goroutines of
// one OS process. It provides the primitives the paper's applications
// use — nonblocking point-to-point (Isend/Irecv with eager and
// rendezvous protocols selected by message size, as observed on the
// paper's Open MPI/BXI configuration), a nonblocking Iallreduce
// collective, Test/Wait completion, and PMPI-style profiling hooks that
// feed the communication-overlap metrics of internal/trace.
//
// Matching follows MPI semantics: per (source, tag) FIFO order with
// wildcard AnySource/AnyTag receives.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"taskdep/internal/obs"
	"taskdep/internal/trace"
)

// ErrAborted reports that the world was torn down by World.Abort (a
// rank failed): every pending request — including rendezvous sends and
// half-gathered collectives that would otherwise block forever — is
// completed with an error wrapping it, and later posts complete
// immediately the same way. Use errors.Is(err, mpi.ErrAborted).
var ErrAborted = errors.New("mpi: world aborted")

// abortError carries the abort cause alongside ErrAborted.
type abortError struct{ cause error }

func (e *abortError) Error() string {
	if e.cause == nil {
		return ErrAborted.Error()
	}
	return ErrAborted.Error() + ": " + e.cause.Error()
}

func (e *abortError) Unwrap() []error {
	if e.cause == nil {
		return []error{ErrAborted}
	}
	return []error{ErrAborted, e.cause}
}

// AnySource and AnyTag are wildcard matching values for Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultEagerThreshold is the message size (in elements of float64,
// i.e. 8 bytes each) below which sends complete eagerly; larger messages
// use a rendezvous protocol and complete only when matched. 64 KiB / 8.
const DefaultEagerThreshold = 8192

// Op is a reduction operator.
type Op int

const (
	// Sum adds contributions elementwise.
	Sum Op = iota
	// Min takes the elementwise minimum (LULESH dt reduction).
	Min
	// Max takes the elementwise maximum.
	Max
)

func (o Op) apply(acc, in []float64) {
	switch o {
	case Sum:
		for i := range acc {
			acc[i] += in[i]
		}
	case Min:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	case Max:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	}
}

// Request is a nonblocking operation handle.
type Request struct {
	id    int64
	kind  trace.CommKind
	bytes int
	done  chan struct{}
	once  sync.Once
	// err is the completion status: nil for success, an ErrAborted
	// wrapper when the world aborted under the request. Written before
	// done is closed, read only after it — the channel orders the
	// accesses.
	err error

	// Source/Tag are filled on receive completion (matched envelope).
	Source int
	Tag    int

	// onComplete, if set, runs exactly once at completion, from the
	// completing goroutine (used to fulfill detached task events).
	onComplete atomic.Pointer[func()]

	comm *Comm
}

// ID returns the unique request id (used in profiles).
func (r *Request) ID() int64 { return r.id }

// OnComplete registers f to run at completion; if the request already
// completed, f runs immediately. Used to bridge MPI completion to
// detached-task events.
func (r *Request) OnComplete(f func()) {
	r.onComplete.Store(&f)
	select {
	case <-r.done:
		r.fire()
	default:
	}
}

func (r *Request) fire() {
	if p := r.onComplete.Swap(nil); p != nil {
		(*p)()
	}
}

func (r *Request) complete() { r.completeErr(nil) }

// completeErr finishes the request exactly once, recording err as its
// status. OnComplete callbacks fire on error completions too, so
// detached-task events bridged to requests are still fulfilled and the
// task graph drains; the task observes the failure through Err.
func (r *Request) completeErr(err error) {
	r.once.Do(func() {
		r.err = err
		if c := r.comm; c != nil && c.profile != nil {
			c.profile.CommComplete(r.id, c.clock())
		}
		close(r.done)
		r.fire()
	})
}

// Err returns the request's completion status: nil before completion
// and for successful completion, an ErrAborted-wrapping error when the
// world aborted under the request.
func (r *Request) Err() error {
	select {
	case <-r.done:
		return r.err
	default:
		return nil
	}
}

// Done reports (without blocking) whether the request completed.
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []float64 // owned copy (eager) or sender's buffer (rendezvous)
	sreq     *Request  // non-nil for rendezvous: completed on match
}

// postedRecv is a pending receive.
type postedRecv struct {
	src, tag int
	buf      []float64
	req      *Request
}

// mailbox is the per-rank matching engine.
type mailbox struct {
	mu         sync.Mutex
	unexpected []message
	posted     []postedRecv
}

// collective tracks one in-flight Iallreduce instance. Contributions are
// stored per rank and reduced in rank order at completion, so the result
// is deterministic even for non-associative floating-point sums.
type collective struct {
	op    Op
	n     int
	ins   [][]float64 // indexed by rank
	count int
	outs  [][]float64
	reqs  []*Request
}

// World is a set of ranks sharing an interconnect.
type World struct {
	size  int
	boxes []*mailbox

	collMu sync.Mutex
	colls  map[int64]*collective
	// collSeqs holds each rank's collective call counter so repeated
	// Comm() handles for the same rank share the matching sequence.
	collSeqs []int64

	// EagerThreshold in float64 elements; messages of Len >= threshold
	// use rendezvous.
	eagerThreshold int

	reqID atomic.Int64

	// Abort state. aborted is checked inside the mailbox/collective
	// critical sections, so a post either lands before the abort drain
	// (and is drained) or observes the flag (and fails immediately) —
	// never enqueues unseen.
	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortErr error
}

// NewWorld creates a world of size ranks with the default eager
// threshold.
func NewWorld(size int) *World {
	w := &World{
		size:           size,
		boxes:          make([]*mailbox, size),
		colls:          make(map[int64]*collective),
		collSeqs:       make([]int64, size),
		eagerThreshold: DefaultEagerThreshold,
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	return w
}

// SetEagerThreshold overrides the eager/rendezvous switch (in float64
// elements). Call before Run.
func (w *World) SetEagerThreshold(n int) { w.eagerThreshold = n }

// Abort tears the world down after a rank failed: every pending request
// on every rank — posted receives, rendezvous sends parked in
// unexpected queues, half-gathered collectives — completes with an
// error wrapping ErrAborted and cause, and every later post completes
// immediately the same way. Peers blocked in Wait/Waitall observe the
// error instead of deadlocking against a rank that will never send.
// Idempotent; the first cause wins. Safe to call from any goroutine.
func (w *World) Abort(cause error) {
	w.abortMu.Lock()
	if w.aborted.Load() {
		w.abortMu.Unlock()
		return
	}
	w.abortErr = &abortError{cause: cause}
	err := w.abortErr
	w.aborted.Store(true)
	w.abortMu.Unlock()

	for _, box := range w.boxes {
		box.mu.Lock()
		posted := box.posted
		box.posted = nil
		var sreqs []*Request
		for _, m := range box.unexpected {
			if m.sreq != nil {
				sreqs = append(sreqs, m.sreq)
			}
		}
		box.unexpected = nil
		box.mu.Unlock()
		for _, p := range posted {
			p.req.completeErr(err)
		}
		for _, s := range sreqs {
			s.completeErr(err)
		}
	}

	w.collMu.Lock()
	colls := w.colls
	w.colls = make(map[int64]*collective)
	w.collMu.Unlock()
	for _, coll := range colls {
		for _, r := range coll.reqs {
			r.completeErr(err)
		}
	}
}

// Aborted reports whether the world was aborted.
func (w *World) Aborted() bool { return w.aborted.Load() }

// abortedErr returns the composed abort error; call only after aborted
// is observed true.
func (w *World) abortedErr() error {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes f concurrently on every rank and waits for all to return.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm returns rank r's communicator handle.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of world size %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank, collSeq: &w.collSeqs[rank], clock: func() float64 { return 0 }}
}

// Comm is one rank's endpoint. A Comm must be used by one goroutine for
// posting operations (the owning rank), matching MPI's threading level
// as used in the paper (communications nested in tasks of one runtime).
type Comm struct {
	world   *World
	rank    int
	collSeq *int64

	profile *trace.Profile
	clock   func() float64
	metrics *obs.Registry
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Abort tears down the whole world (see World.Abort): a rank whose
// runtime failed calls it so its peers error out of pending and future
// communications instead of deadlocking against a dead rank.
func (c *Comm) Abort(cause error) { c.world.Abort(cause) }

// SetProfile attaches a PMPI-style profiler: every send/collective post
// and completion is recorded with the given clock.
func (c *Comm) SetProfile(p *trace.Profile, clock func() float64) {
	c.profile = p
	if clock != nil {
		c.clock = clock
	}
}

// SetMetrics attaches a metrics registry: every posted send, receive
// and collective bumps the taskdep_mpi_* counters (operation count and
// payload bytes). Typically wired to the posting rank's runtime
// registry (Runtime.Obs). Set before posting operations.
func (c *Comm) SetMetrics(r *obs.Registry) { c.metrics = r }

func (c *Comm) newRequest(kind trace.CommKind, bytes int) *Request {
	r := &Request{
		id:    c.world.reqID.Add(1),
		kind:  kind,
		bytes: bytes,
		done:  make(chan struct{}),
		comm:  c,
	}
	if c.profile != nil {
		c.profile.CommPost(r.id, kind, bytes, c.clock())
	}
	if m := c.metrics; m != nil {
		// MPI posts happen inside task bodies on arbitrary workers, and
		// completion callbacks on engine goroutines: route through the
		// registry's external (true atomic) shard. Collective payloads
		// count as sent bytes.
		switch kind {
		case trace.Send:
			m.Add(obs.CMPISends, 1)
			m.Add(obs.CMPIBytesSent, int64(bytes))
		case trace.Recv:
			m.Add(obs.CMPIRecvs, 1)
			m.Add(obs.CMPIBytesRecvd, int64(bytes))
		case trace.Collective:
			m.Add(obs.CMPICollectives, 1)
			m.Add(obs.CMPIBytesSent, int64(bytes))
		}
	}
	return r
}

// Isend posts a nonblocking send of buf to dest with tag. Small messages
// (below the eager threshold) complete immediately; large ones complete
// when the matching receive is posted (rendezvous).
func (c *Comm) Isend(buf []float64, dest, tag int) *Request {
	if dest < 0 || dest >= c.world.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dest))
	}
	req := c.newRequest(trace.Send, 8*len(buf))
	eager := len(buf) < c.world.eagerThreshold
	box := c.world.boxes[dest]

	box.mu.Lock()
	if c.world.aborted.Load() {
		box.mu.Unlock()
		req.completeErr(c.world.abortedErr())
		return req
	}
	// Try to match an already-posted receive (FIFO).
	for i := range box.posted {
		p := box.posted[i]
		if (p.src == AnySource || p.src == c.rank) && (p.tag == AnyTag || p.tag == tag) {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			copy(p.buf, buf)
			p.req.Source, p.req.Tag = c.rank, tag
			box.mu.Unlock()
			p.req.complete()
			req.complete()
			return req
		}
	}
	// No receive yet: enqueue.
	m := message{src: c.rank, tag: tag}
	if eager {
		m.data = append([]float64(nil), buf...)
	} else {
		m.data = buf // rendezvous: sender buffer referenced until match
		m.sreq = req
	}
	box.unexpected = append(box.unexpected, m)
	box.mu.Unlock()
	if eager {
		req.complete()
	}
	return req
}

// Irecv posts a nonblocking receive into buf from src (or AnySource)
// with tag (or AnyTag).
func (c *Comm) Irecv(buf []float64, src, tag int) *Request {
	req := c.newRequest(trace.Recv, 8*len(buf))
	box := c.world.boxes[c.rank]

	box.mu.Lock()
	if c.world.aborted.Load() {
		box.mu.Unlock()
		req.completeErr(c.world.abortedErr())
		return req
	}
	for i := range box.unexpected {
		m := box.unexpected[i]
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			copy(buf, m.data)
			req.Source, req.Tag = m.src, m.tag
			box.mu.Unlock()
			if m.sreq != nil {
				m.sreq.complete() // rendezvous sender completes on match
			}
			req.complete()
			return req
		}
	}
	box.posted = append(box.posted, postedRecv{src: src, tag: tag, buf: buf, req: req})
	box.mu.Unlock()
	return req
}

// Send is a blocking send (Isend + Wait).
func (c *Comm) Send(buf []float64, dest, tag int) { c.Isend(buf, dest, tag).Wait() }

// Recv is a blocking receive (Irecv + Wait). It returns the matched
// source and tag.
func (c *Comm) Recv(buf []float64, src, tag int) (int, int) {
	r := c.Irecv(buf, src, tag)
	r.Wait()
	return r.Source, r.Tag
}

// Iallreduce posts a nonblocking allreduce: recv = op over every rank's
// send. All ranks must call it the same number of times with equal
// lengths; instances match by per-rank call sequence. The request
// completes when every rank has contributed.
func (c *Comm) Iallreduce(op Op, send, recv []float64) *Request {
	if len(send) != len(recv) {
		panic("mpi: Iallreduce length mismatch")
	}
	req := c.newRequest(trace.Collective, 8*len(send))
	seq := atomic.AddInt64(c.collSeq, 1)

	w := c.world
	w.collMu.Lock()
	if w.aborted.Load() {
		w.collMu.Unlock()
		req.completeErr(w.abortedErr())
		return req
	}
	coll := w.colls[seq]
	if coll == nil {
		coll = &collective{op: op, n: len(send), ins: make([][]float64, w.size)}
		w.colls[seq] = coll
	} else if coll.op != op || coll.n != len(send) {
		w.collMu.Unlock()
		panic("mpi: mismatched Iallreduce across ranks")
	}
	coll.ins[c.rank] = append([]float64(nil), send...)
	coll.count++
	coll.outs = append(coll.outs, recv)
	coll.reqs = append(coll.reqs, req)
	if coll.count == w.size {
		delete(w.colls, seq)
		w.collMu.Unlock()
		acc := append([]float64(nil), coll.ins[0]...)
		for rk := 1; rk < w.size; rk++ {
			op.apply(acc, coll.ins[rk])
		}
		for i, out := range coll.outs {
			copy(out, acc)
			coll.reqs[i].complete()
		}
		return req
	}
	w.collMu.Unlock()
	return req
}

// Allreduce is the blocking form of Iallreduce.
func (c *Comm) Allreduce(op Op, send, recv []float64) {
	c.Iallreduce(op, send, recv).Wait()
}

// Barrier blocks until every rank reaches it.
func (c *Comm) Barrier() {
	var x, y [1]float64
	c.Allreduce(Sum, x[:], y[:])
}

// Wait blocks until the request completes and returns its status: nil
// on success, an ErrAborted-wrapping error when the world aborted.
func (r *Request) Wait() error {
	<-r.done
	return r.err
}

// Test reports whether the request completed (MPI_Test semantics: no
// blocking, safe to call repeatedly).
func (r *Request) Test() bool { return r.Done() }

// Waitall blocks until every request completes and returns the joined
// non-nil statuses (nil when all succeeded).
func Waitall(reqs ...*Request) error {
	var errs []error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Testall reports whether all requests completed.
func Testall(reqs ...*Request) bool {
	for _, r := range reqs {
		if r != nil && !r.Done() {
			return false
		}
	}
	return true
}
