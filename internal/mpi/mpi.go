// Package mpi implements the message-passing substrate of the
// reproduction: an in-process MPI subset where ranks are goroutines of
// one OS process. It provides the primitives the paper's applications
// use — nonblocking point-to-point (Isend/Irecv with eager and
// rendezvous protocols selected by message size, as observed on the
// paper's Open MPI/BXI configuration), a nonblocking Iallreduce
// collective, Test/Wait completion, and PMPI-style profiling hooks that
// feed the communication-overlap metrics of internal/trace.
//
// Matching follows MPI semantics: per (source, tag) FIFO order with
// wildcard AnySource/AnyTag receives.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"taskdep/internal/trace"
)

// AnySource and AnyTag are wildcard matching values for Irecv.
const (
	AnySource = -1
	AnyTag    = -1
)

// DefaultEagerThreshold is the message size (in elements of float64,
// i.e. 8 bytes each) below which sends complete eagerly; larger messages
// use a rendezvous protocol and complete only when matched. 64 KiB / 8.
const DefaultEagerThreshold = 8192

// Op is a reduction operator.
type Op int

const (
	// Sum adds contributions elementwise.
	Sum Op = iota
	// Min takes the elementwise minimum (LULESH dt reduction).
	Min
	// Max takes the elementwise maximum.
	Max
)

func (o Op) apply(acc, in []float64) {
	switch o {
	case Sum:
		for i := range acc {
			acc[i] += in[i]
		}
	case Min:
		for i := range acc {
			if in[i] < acc[i] {
				acc[i] = in[i]
			}
		}
	case Max:
		for i := range acc {
			if in[i] > acc[i] {
				acc[i] = in[i]
			}
		}
	}
}

// Request is a nonblocking operation handle.
type Request struct {
	id    int64
	kind  trace.CommKind
	bytes int
	done  chan struct{}
	once  sync.Once

	// Source/Tag are filled on receive completion (matched envelope).
	Source int
	Tag    int

	// onComplete, if set, runs exactly once at completion, from the
	// completing goroutine (used to fulfill detached task events).
	onComplete atomic.Pointer[func()]

	comm *Comm
}

// ID returns the unique request id (used in profiles).
func (r *Request) ID() int64 { return r.id }

// OnComplete registers f to run at completion; if the request already
// completed, f runs immediately. Used to bridge MPI completion to
// detached-task events.
func (r *Request) OnComplete(f func()) {
	r.onComplete.Store(&f)
	select {
	case <-r.done:
		r.fire()
	default:
	}
}

func (r *Request) fire() {
	if p := r.onComplete.Swap(nil); p != nil {
		(*p)()
	}
}

func (r *Request) complete() {
	r.once.Do(func() {
		if c := r.comm; c != nil && c.profile != nil {
			c.profile.CommComplete(r.id, c.clock())
		}
		close(r.done)
		r.fire()
	})
}

// Done reports (without blocking) whether the request completed.
func (r *Request) Done() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// message is an in-flight point-to-point message.
type message struct {
	src, tag int
	data     []float64 // owned copy (eager) or sender's buffer (rendezvous)
	sreq     *Request  // non-nil for rendezvous: completed on match
}

// postedRecv is a pending receive.
type postedRecv struct {
	src, tag int
	buf      []float64
	req      *Request
}

// mailbox is the per-rank matching engine.
type mailbox struct {
	mu         sync.Mutex
	unexpected []message
	posted     []postedRecv
}

// collective tracks one in-flight Iallreduce instance. Contributions are
// stored per rank and reduced in rank order at completion, so the result
// is deterministic even for non-associative floating-point sums.
type collective struct {
	op    Op
	n     int
	ins   [][]float64 // indexed by rank
	count int
	outs  [][]float64
	reqs  []*Request
}

// World is a set of ranks sharing an interconnect.
type World struct {
	size  int
	boxes []*mailbox

	collMu sync.Mutex
	colls  map[int64]*collective
	// collSeqs holds each rank's collective call counter so repeated
	// Comm() handles for the same rank share the matching sequence.
	collSeqs []int64

	// EagerThreshold in float64 elements; messages of Len >= threshold
	// use rendezvous.
	eagerThreshold int

	reqID atomic.Int64
}

// NewWorld creates a world of size ranks with the default eager
// threshold.
func NewWorld(size int) *World {
	w := &World{
		size:           size,
		boxes:          make([]*mailbox, size),
		colls:          make(map[int64]*collective),
		collSeqs:       make([]int64, size),
		eagerThreshold: DefaultEagerThreshold,
	}
	for i := range w.boxes {
		w.boxes[i] = &mailbox{}
	}
	return w
}

// SetEagerThreshold overrides the eager/rendezvous switch (in float64
// elements). Call before Run.
func (w *World) SetEagerThreshold(n int) { w.eagerThreshold = n }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes f concurrently on every rank and waits for all to return.
func (w *World) Run(f func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm returns rank r's communicator handle.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of world size %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank, collSeq: &w.collSeqs[rank], clock: func() float64 { return 0 }}
}

// Comm is one rank's endpoint. A Comm must be used by one goroutine for
// posting operations (the owning rank), matching MPI's threading level
// as used in the paper (communications nested in tasks of one runtime).
type Comm struct {
	world   *World
	rank    int
	collSeq *int64

	profile *trace.Profile
	clock   func() float64
}

// Rank returns the caller's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// SetProfile attaches a PMPI-style profiler: every send/collective post
// and completion is recorded with the given clock.
func (c *Comm) SetProfile(p *trace.Profile, clock func() float64) {
	c.profile = p
	if clock != nil {
		c.clock = clock
	}
}

func (c *Comm) newRequest(kind trace.CommKind, bytes int) *Request {
	r := &Request{
		id:    c.world.reqID.Add(1),
		kind:  kind,
		bytes: bytes,
		done:  make(chan struct{}),
		comm:  c,
	}
	if c.profile != nil {
		c.profile.CommPost(r.id, kind, bytes, c.clock())
	}
	return r
}

// Isend posts a nonblocking send of buf to dest with tag. Small messages
// (below the eager threshold) complete immediately; large ones complete
// when the matching receive is posted (rendezvous).
func (c *Comm) Isend(buf []float64, dest, tag int) *Request {
	if dest < 0 || dest >= c.world.size {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dest))
	}
	req := c.newRequest(trace.Send, 8*len(buf))
	eager := len(buf) < c.world.eagerThreshold
	box := c.world.boxes[dest]

	box.mu.Lock()
	// Try to match an already-posted receive (FIFO).
	for i := range box.posted {
		p := box.posted[i]
		if (p.src == AnySource || p.src == c.rank) && (p.tag == AnyTag || p.tag == tag) {
			box.posted = append(box.posted[:i], box.posted[i+1:]...)
			copy(p.buf, buf)
			p.req.Source, p.req.Tag = c.rank, tag
			box.mu.Unlock()
			p.req.complete()
			req.complete()
			return req
		}
	}
	// No receive yet: enqueue.
	m := message{src: c.rank, tag: tag}
	if eager {
		m.data = append([]float64(nil), buf...)
	} else {
		m.data = buf // rendezvous: sender buffer referenced until match
		m.sreq = req
	}
	box.unexpected = append(box.unexpected, m)
	box.mu.Unlock()
	if eager {
		req.complete()
	}
	return req
}

// Irecv posts a nonblocking receive into buf from src (or AnySource)
// with tag (or AnyTag).
func (c *Comm) Irecv(buf []float64, src, tag int) *Request {
	req := c.newRequest(trace.Recv, 8*len(buf))
	box := c.world.boxes[c.rank]

	box.mu.Lock()
	for i := range box.unexpected {
		m := box.unexpected[i]
		if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
			box.unexpected = append(box.unexpected[:i], box.unexpected[i+1:]...)
			copy(buf, m.data)
			req.Source, req.Tag = m.src, m.tag
			box.mu.Unlock()
			if m.sreq != nil {
				m.sreq.complete() // rendezvous sender completes on match
			}
			req.complete()
			return req
		}
	}
	box.posted = append(box.posted, postedRecv{src: src, tag: tag, buf: buf, req: req})
	box.mu.Unlock()
	return req
}

// Send is a blocking send (Isend + Wait).
func (c *Comm) Send(buf []float64, dest, tag int) { c.Isend(buf, dest, tag).Wait() }

// Recv is a blocking receive (Irecv + Wait). It returns the matched
// source and tag.
func (c *Comm) Recv(buf []float64, src, tag int) (int, int) {
	r := c.Irecv(buf, src, tag)
	r.Wait()
	return r.Source, r.Tag
}

// Iallreduce posts a nonblocking allreduce: recv = op over every rank's
// send. All ranks must call it the same number of times with equal
// lengths; instances match by per-rank call sequence. The request
// completes when every rank has contributed.
func (c *Comm) Iallreduce(op Op, send, recv []float64) *Request {
	if len(send) != len(recv) {
		panic("mpi: Iallreduce length mismatch")
	}
	req := c.newRequest(trace.Collective, 8*len(send))
	seq := atomic.AddInt64(c.collSeq, 1)

	w := c.world
	w.collMu.Lock()
	coll := w.colls[seq]
	if coll == nil {
		coll = &collective{op: op, n: len(send), ins: make([][]float64, w.size)}
		w.colls[seq] = coll
	} else if coll.op != op || coll.n != len(send) {
		w.collMu.Unlock()
		panic("mpi: mismatched Iallreduce across ranks")
	}
	coll.ins[c.rank] = append([]float64(nil), send...)
	coll.count++
	coll.outs = append(coll.outs, recv)
	coll.reqs = append(coll.reqs, req)
	if coll.count == w.size {
		delete(w.colls, seq)
		w.collMu.Unlock()
		acc := append([]float64(nil), coll.ins[0]...)
		for rk := 1; rk < w.size; rk++ {
			op.apply(acc, coll.ins[rk])
		}
		for i, out := range coll.outs {
			copy(out, acc)
			coll.reqs[i].complete()
		}
		return req
	}
	w.collMu.Unlock()
	return req
}

// Allreduce is the blocking form of Iallreduce.
func (c *Comm) Allreduce(op Op, send, recv []float64) {
	c.Iallreduce(op, send, recv).Wait()
}

// Barrier blocks until every rank reaches it.
func (c *Comm) Barrier() {
	var x, y [1]float64
	c.Allreduce(Sum, x[:], y[:])
}

// Wait blocks until the request completes.
func (r *Request) Wait() { <-r.done }

// Test reports whether the request completed (MPI_Test semantics: no
// blocking, safe to call repeatedly).
func (r *Request) Test() bool { return r.Done() }

// Waitall blocks until every request completes.
func Waitall(reqs ...*Request) {
	for _, r := range reqs {
		if r != nil {
			r.Wait()
		}
	}
}

// Testall reports whether all requests completed.
func Testall(reqs ...*Request) bool {
	for _, r := range reqs {
		if r != nil && !r.Done() {
			return false
		}
	}
	return true
}
