package mpi

import (
	"sync/atomic"
	"testing"
	"time"

	"taskdep/internal/trace"
)

func TestEagerThresholdBoundary(t *testing.T) {
	w := NewWorld(2)
	w.SetEagerThreshold(4)
	// len == threshold: rendezvous; len < threshold: eager.
	exact := w.Comm(0).Isend(make([]float64, 4), 1, 1)
	if exact.Test() {
		t.Fatalf("at-threshold send completed eagerly")
	}
	below := w.Comm(0).Isend(make([]float64, 3), 1, 2)
	if !below.Test() {
		t.Fatalf("below-threshold send did not complete eagerly")
	}
	buf := make([]float64, 4)
	w.Comm(1).Recv(buf, 0, 1)
	exact.Wait()
	w.Comm(1).Recv(buf[:3], 0, 2)
}

func TestRepeatedCommHandlesShareCollectiveSequence(t *testing.T) {
	// World.Comm(rank) called twice must share the per-rank collective
	// counter; otherwise instances mismatch.
	w := NewWorld(2)
	done := make(chan float64, 2)
	go func() {
		var out [1]float64
		w.Comm(0).Allreduce(Sum, []float64{1}, out[:]) // handle A
		w.Comm(0).Allreduce(Sum, []float64{2}, out[:]) // handle B (fresh)
		done <- out[0]
	}()
	go func() {
		var out [1]float64
		c := w.Comm(1)
		c.Allreduce(Sum, []float64{10}, out[:])
		c.Allreduce(Sum, []float64{20}, out[:])
		done <- out[0]
	}()
	a, b := <-done, <-done
	if a != 22 || b != 22 {
		t.Fatalf("results %v %v, want 22 22", a, b)
	}
}

func TestSelfSend(t *testing.T) {
	w := NewWorld(1)
	c := w.Comm(0)
	r := c.Irecv(make([]float64, 1), 0, 5)
	c.Isend([]float64{3}, 0, 5)
	r.Wait()
}

func TestWaitallAndTestallWithNil(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(0).Isend([]float64{1}, 1, 0)
	if !Testall(r, nil) {
		t.Fatalf("eager send + nil should be all done")
	}
	Waitall(nil, r, nil)
	buf := make([]float64, 1)
	r2 := w.Comm(1).Irecv(buf, 0, 1)
	if Testall(r2) {
		t.Fatalf("unmatched recv reported done")
	}
	w.Comm(0).Isend([]float64{2}, 1, 1)
	Waitall(r2)
}

func TestRecvCompletionFillsEnvelope(t *testing.T) {
	w := NewWorld(3)
	w.Comm(2).Isend([]float64{1}, 0, 77)
	buf := make([]float64, 1)
	r := w.Comm(0).Irecv(buf, AnySource, AnyTag)
	r.Wait()
	if r.Source != 2 || r.Tag != 77 {
		t.Fatalf("envelope = %d/%d", r.Source, r.Tag)
	}
}

func TestRendezvousZeroCopyVisibility(t *testing.T) {
	// Rendezvous references the sender's buffer until the match; data
	// written before the Isend must arrive intact.
	w := NewWorld(2)
	w.SetEagerThreshold(2)
	src := []float64{1, 2, 3, 4}
	req := w.Comm(0).Isend(src, 1, 0)
	dst := make([]float64, 4)
	w.Comm(1).Recv(dst, 0, 0)
	req.Wait()
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("dst = %v", dst)
		}
	}
}

func TestProfileRecordsRecvSeparately(t *testing.T) {
	w := NewWorld(2)
	p := trace.New(1, true)
	c1 := w.Comm(1)
	c1.SetProfile(p, func() float64 { return 0 })
	buf := make([]float64, 1)
	r := c1.Irecv(buf, 0, 0)
	w.Comm(0).Send([]float64{1}, 1, 0)
	r.Wait()
	// Recv requests are recorded but excluded from the paper's comm
	// metric.
	if got := len(p.Comms()); got != 1 {
		t.Fatalf("records = %d", got)
	}
	if s := p.CommSummary(); s.Requests != 0 {
		t.Fatalf("recv counted in summary: %+v", s)
	}
}

func TestConcurrentSendersManyTags(t *testing.T) {
	const senders, msgs = 4, 50
	w := NewWorld(senders + 1)
	var sum atomic.Int64
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		c := w.Comm(senders)
		buf := make([]float64, 1)
		for i := 0; i < senders*msgs; i++ {
			c.Recv(buf, AnySource, AnyTag)
			sum.Add(int64(buf[0]))
		}
	}()
	for s := 0; s < senders; s++ {
		go func(s int) {
			c := w.Comm(s)
			for m := 0; m < msgs; m++ {
				c.Send([]float64{1}, senders, m)
			}
		}(s)
	}
	select {
	case <-doneCh:
	case <-time.After(20 * time.Second):
		t.Fatalf("receiver starved: got %d", sum.Load())
	}
	if sum.Load() != senders*msgs {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestBarrierRepeated(t *testing.T) {
	const n, rounds = 5, 10
	w := NewWorld(n)
	var phase atomic.Int32
	var bad atomic.Bool
	w.Run(func(c *Comm) {
		for r := 0; r < rounds; r++ {
			phase.Add(1)
			c.Barrier()
			if int(phase.Load()) < (r+1)*n {
				bad.Store(true)
			}
			c.Barrier() // second barrier prevents next-round overtaking
		}
	})
	if bad.Load() {
		t.Fatalf("barrier round leaked")
	}
}
