package mpi

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"taskdep/internal/trace"
)

func TestSendRecvBlocking(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send([]float64{1, 2, 3}, 1, 7)
		} else {
			buf := make([]float64, 3)
			src, tag := c.Recv(buf, 0, 7)
			if src != 0 || tag != 7 || buf[0] != 1 || buf[2] != 3 {
				t.Errorf("recv = %v src=%d tag=%d", buf, src, tag)
			}
		}
	})
}

func TestEagerSendCompletesBeforeRecv(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := w.Comm(0)
		r := c.Isend([]float64{42}, 1, 0) // below threshold: eager
		if !r.Test() {
			t.Errorf("eager send did not complete at post")
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("eager send blocked")
	}
	// Receiver still gets the data later.
	buf := make([]float64, 1)
	w.Comm(1).Recv(buf, 0, 0)
	if buf[0] != 42 {
		t.Fatalf("buf = %v", buf)
	}
}

func TestRendezvousSendWaitsForRecv(t *testing.T) {
	w := NewWorld(2)
	w.SetEagerThreshold(4)
	big := make([]float64, 16)
	for i := range big {
		big[i] = float64(i)
	}
	c0 := w.Comm(0)
	r := c0.Isend(big, 1, 3)
	time.Sleep(10 * time.Millisecond)
	if r.Test() {
		t.Fatalf("rendezvous send completed before matching recv")
	}
	buf := make([]float64, 16)
	w.Comm(1).Recv(buf, 0, 3)
	r.Wait()
	if buf[15] != 15 {
		t.Fatalf("data corrupted: %v", buf)
	}
}

func TestRecvThenSendMatch(t *testing.T) {
	w := NewWorld(2)
	buf := make([]float64, 2)
	req := w.Comm(1).Irecv(buf, 0, 5)
	if req.Test() {
		t.Fatalf("recv completed with no sender")
	}
	w.Comm(0).Send([]float64{9, 8}, 1, 5)
	req.Wait()
	if buf[0] != 9 || buf[1] != 8 {
		t.Fatalf("buf = %v", buf)
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Isend([]float64{1}, 1, 10)
	c0.Isend([]float64{2}, 1, 20)
	buf := make([]float64, 1)
	c1.Recv(buf, 0, 20)
	if buf[0] != 2 {
		t.Fatalf("tag 20 got %v", buf[0])
	}
	c1.Recv(buf, 0, 10)
	if buf[0] != 1 {
		t.Fatalf("tag 10 got %v", buf[0])
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := NewWorld(3)
	w.Comm(2).Isend([]float64{5}, 0, 99)
	buf := make([]float64, 1)
	src, tag := w.Comm(0).Recv(buf, AnySource, AnyTag)
	if src != 2 || tag != 99 || buf[0] != 5 {
		t.Fatalf("src=%d tag=%d buf=%v", src, tag, buf)
	}
}

func TestNonOvertakingSameSourceTag(t *testing.T) {
	w := NewWorld(2)
	c0 := w.Comm(0)
	for i := 0; i < 10; i++ {
		c0.Isend([]float64{float64(i)}, 1, 1)
	}
	buf := make([]float64, 1)
	for i := 0; i < 10; i++ {
		w.Comm(1).Recv(buf, 0, 1)
		if buf[0] != float64(i) {
			t.Fatalf("overtaking: got %v want %d", buf[0], i)
		}
	}
}

func TestAllreduceSumMinMax(t *testing.T) {
	const n = 8
	w := NewWorld(n)
	var mu sync.Mutex
	results := map[int][3]float64{}
	w.Run(func(c *Comm) {
		r := float64(c.Rank())
		var sum, mn, mx [1]float64
		c.Allreduce(Sum, []float64{r}, sum[:])
		c.Allreduce(Min, []float64{r}, mn[:])
		c.Allreduce(Max, []float64{r}, mx[:])
		mu.Lock()
		results[c.Rank()] = [3]float64{sum[0], mn[0], mx[0]}
		mu.Unlock()
	})
	for rank, v := range results {
		if v[0] != n*(n-1)/2 || v[1] != 0 || v[2] != n-1 {
			t.Fatalf("rank %d results %v", rank, v)
		}
	}
}

func TestIallreduceNonblockingOverlap(t *testing.T) {
	w := NewWorld(4)
	var overlapped atomic.Int32
	w.Run(func(c *Comm) {
		in := []float64{float64(c.Rank() + 1)}
		out := make([]float64, 1)
		req := c.Iallreduce(Sum, in, out)
		overlapped.Add(1) // work between post and wait
		req.Wait()
		if out[0] != 10 {
			t.Errorf("sum = %v", out[0])
		}
	})
	if overlapped.Load() != 4 {
		t.Fatalf("ranks did not proceed past post")
	}
}

func TestBarrier(t *testing.T) {
	const n = 6
	w := NewWorld(n)
	var phase atomic.Int32
	var bad atomic.Bool
	w.Run(func(c *Comm) {
		phase.Add(1)
		c.Barrier()
		if phase.Load() != n {
			bad.Store(true)
		}
	})
	if bad.Load() {
		t.Fatalf("barrier released early")
	}
}

func TestOnCompleteFiresOnce(t *testing.T) {
	w := NewWorld(2)
	var fires atomic.Int32
	buf := make([]float64, 1)
	req := w.Comm(1).Irecv(buf, 0, 0)
	req.OnComplete(func() { fires.Add(1) })
	w.Comm(0).Send([]float64{1}, 1, 0)
	req.Wait()
	req.OnComplete(func() { fires.Add(1) }) // already done: fires now
	if fires.Load() != 2 {
		t.Fatalf("fires = %d, want 2 (once per registration)", fires.Load())
	}
}

func TestOnCompleteAfterCompletionRunsImmediately(t *testing.T) {
	w := NewWorld(2)
	r := w.Comm(0).Isend([]float64{1}, 1, 0) // eager: done at post
	var ran atomic.Bool
	r.OnComplete(func() { ran.Store(true) })
	if !ran.Load() {
		t.Fatalf("late OnComplete did not run")
	}
}

func TestProfileRecordsSendAndCollective(t *testing.T) {
	w := NewWorld(2)
	p := trace.New(1, true)
	clk := func() float64 { return 1.0 }
	var recvd atomic.Bool
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.SetProfile(p, clk)
			c.Isend([]float64{1}, 1, 0).Wait()
			var a, b [1]float64
			c.Iallreduce(Sum, a[:], b[:]).Wait()
		} else {
			buf := make([]float64, 1)
			c.Recv(buf, 0, 0)
			recvd.Store(true)
			var a, b [1]float64
			c.Iallreduce(Sum, a[:], b[:]).Wait()
		}
	})
	if !recvd.Load() {
		t.Fatalf("recv missing")
	}
	s := p.CommSummary()
	if s.Requests != 2 {
		t.Fatalf("profiled requests = %d, want 2 (send + collective)", s.Requests)
	}
}

func TestManyRanksRing(t *testing.T) {
	const n = 16
	w := NewWorld(n)
	var sum atomic.Int64
	w.Run(func(c *Comm) {
		next := (c.Rank() + 1) % n
		prev := (c.Rank() - 1 + n) % n
		buf := make([]float64, 1)
		rr := c.Irecv(buf, prev, 0)
		c.Isend([]float64{float64(c.Rank())}, next, 0)
		rr.Wait()
		sum.Add(int64(buf[0]))
	})
	if sum.Load() != n*(n-1)/2 {
		t.Fatalf("ring sum = %d", sum.Load())
	}
}

// TestPropertyExchangeDeliversExactly: random pairwise exchanges deliver
// every message exactly once with correct payload.
func TestPropertyExchangeDeliversExactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		msgs := rng.Intn(20) + 1
		w := NewWorld(n)
		// Plan: each message i goes src->dst with tag i and value i.
		type plan struct{ src, dst int }
		plans := make([]plan, msgs)
		for i := range plans {
			plans[i] = plan{rng.Intn(n), rng.Intn(n)}
		}
		var total atomic.Int64
		w.Run(func(c *Comm) {
			var reqs []*Request
			for i, pl := range plans {
				if pl.dst == c.Rank() {
					buf := make([]float64, 1)
					i := i
					r := c.Irecv(buf, pl.src, i)
					r.OnComplete(func() { total.Add(int64(buf[0])) })
					reqs = append(reqs, r)
				}
			}
			for i, pl := range plans {
				if pl.src == c.Rank() {
					c.Isend([]float64{float64(i)}, pl.dst, i)
				}
			}
			Waitall(reqs...)
		})
		want := int64(msgs * (msgs - 1) / 2)
		return total.Load() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllreduceEquivalentToSerial checks vector allreduce against
// a serial reduction for random inputs.
func TestPropertyAllreduceEquivalentToSerial(t *testing.T) {
	f := func(seed int64, opRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		l := rng.Intn(10) + 1
		op := Op(opRaw % 3)
		in := make([][]float64, n)
		for r := range in {
			in[r] = make([]float64, l)
			for i := range in[r] {
				in[r][i] = rng.NormFloat64()
			}
		}
		want := append([]float64(nil), in[0]...)
		for r := 1; r < n; r++ {
			op.apply(want, in[r])
		}
		w := NewWorld(n)
		outs := make([][]float64, n)
		w.Run(func(c *Comm) {
			out := make([]float64, l)
			c.Allreduce(op, in[c.Rank()], out)
			outs[c.Rank()] = out
		})
		for r := 0; r < n; r++ {
			for i := 0; i < l; i++ {
				if math.Abs(outs[r][i]-want[i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEagerSendRecv(b *testing.B) {
	w := NewWorld(2)
	c0, c1 := w.Comm(0), w.Comm(1)
	buf := []float64{1, 2, 3, 4}
	rbuf := make([]float64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c0.Isend(buf, 1, 0)
		c1.Recv(rbuf, 0, 0)
	}
}

func BenchmarkAllreduce8(b *testing.B) {
	const n = 8
	w := NewWorld(n)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			in := []float64{float64(rank)}
			out := make([]float64, 1)
			for i := 0; i < b.N; i++ {
				c.Allreduce(Sum, in, out)
			}
		}(r)
	}
	wg.Wait()
}
