package trace

import (
	"fmt"
	"sort"
	"sync"
)

// WorkerState classifies what a worker is doing, for the breakdown.
type WorkerState int

const (
	// Idle: outside a task body with no ready task available.
	Idle WorkerState = iota
	// Overhead: outside a task body while ready tasks exist (scheduling,
	// stealing, dependence bookkeeping).
	Overhead
	// Work: inside a task body.
	Work
	// Skip: draining aborted or poisoned tasks — terminal transitions
	// whose bodies never ran (the failure-domain time bucket).
	Skip
)

// numWorkerStates sizes the per-worker accumulator array.
const numWorkerStates = 4

func (s WorkerState) String() string {
	switch s {
	case Idle:
		return "idle"
	case Overhead:
		return "overhead"
	case Work:
		return "work"
	case Skip:
		return "skip"
	}
	return fmt.Sprintf("WorkerState(%d)", int(s))
}

// TaskRecord is one scheduled task instance, enough to draw a Gantt box.
type TaskRecord struct {
	TaskID int64
	Label  string
	Worker int
	Iter   int
	Start  float64
	End    float64
	// Critical marks tasks on the window's critical path (set by
	// MarkCritical from a cpath report); the Gantt renderers and the
	// Chrome export draw them distinctly.
	Critical bool `json:",omitempty"`
}

// MarkCritical flags every record whose TaskID appears in ids — the
// critical-path overlay bridge: feed it the ID set of a
// cpath.Report.Path and the renderers highlight the span-defining
// chain. Returns how many records were marked.
func MarkCritical(recs []TaskRecord, ids map[int64]bool) int {
	n := 0
	for i := range recs {
		if ids[recs[i].TaskID] {
			recs[i].Critical = true
			n++
		}
	}
	return n
}

// CommKind distinguishes point-to-point sends from collectives, matching
// the paper's send+collective profiling scope.
type CommKind int

const (
	// Send is a point-to-point send request (MPI_Isend/MPI_Start).
	Send CommKind = iota
	// Recv is a point-to-point receive (profiled but excluded from the
	// paper's communication-time metric).
	Recv
	// Collective is an MPI_Iallreduce-style operation.
	Collective
)

func (k CommKind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case Collective:
		return "collective"
	}
	return fmt.Sprintf("CommKind(%d)", int(k))
}

// CommRecord is one profiled request: c(r) = Complete-Post.
type CommRecord struct {
	ReqID    int64
	Kind     CommKind
	Bytes    int
	Post     float64
	Complete float64
}

type workerClock struct {
	state   WorkerState
	since   float64
	accum   [numWorkerStates]float64
	started bool
}

// taskShard is one recording slot's task-box list. Each worker (and
// the producer-as-consumer slot) appends to its own shard under its
// own mutex, so enabling detail profiling no longer funnels every
// completion through one global lock; readers merge on demand. The
// pad keeps neighbouring shard mutexes off one cache line.
type taskShard struct {
	mu    sync.Mutex
	tasks []TaskRecord
	_     [64]byte
}

// Profile accumulates executor events. Worker-state transitions must come
// from the owning worker (or a single-threaded simulator); task records
// go to per-worker shards locked independently, and discovery/comm
// records take their own (producer- respectively engine-side) locks —
// nothing serializes the workers against each other.
type Profile struct {
	nWorkers int
	// workers has nWorkers+1 clocks and shards has nWorkers+2 task
	// shards: callers address slots 0..nWorkers-1 (rt additionally uses
	// slot nWorkers for the producer-as-consumer when it was created
	// with Workers+1 slots), and the trailing entry of each absorbs any
	// out-of-range slot — producer-as-consumer IDs against a profile
	// sized without the +1, or -1 contexts — instead of panicking or
	// aliasing worker 0.
	workers []workerClock
	shards  []taskShard

	detail bool // record per-task boxes

	commMu sync.Mutex
	comms  []CommRecord
	open   map[int64]int // reqID -> index into comms

	// discovery window (first to last task creation), per the paper.
	// Producer-side state under its own lock.
	discMu             sync.Mutex
	createCount        int64
	firstCreate        float64
	lastCreate         float64
	discoveryAccum     float64 // explicit per-iteration accumulation
	iterMarks          []float64
	discoveryPerIter   []float64
	currentIterStart   float64
	currentIterStarted bool
}

// New creates a profile for nWorkers workers. detail enables per-task
// records (needed for Gantt charts and overlap computation).
func New(nWorkers int, detail bool) *Profile {
	return &Profile{
		nWorkers: nWorkers,
		workers:  make([]workerClock, nWorkers+1),
		shards:   make([]taskShard, nWorkers+2),
		open:     make(map[int64]int),
		detail:   detail,
	}
}

// NumWorkers returns the worker count the profile was built for.
func (p *Profile) NumWorkers() int { return p.nWorkers }

// clockFor maps a slot to its state clock; out-of-range slots share
// the spill clock after the addressable ones.
func (p *Profile) clockFor(w int) *workerClock {
	if w >= 0 && w < p.nWorkers {
		return &p.workers[w]
	}
	return &p.workers[p.nWorkers]
}

// shardFor maps a slot to its task shard; out-of-range slots share the
// trailing spill shard (mutex-guarded, so concurrent spillers are safe).
func (p *Profile) shardFor(w int) *taskShard {
	if w >= 0 && w < len(p.shards)-1 {
		return &p.shards[w]
	}
	return &p.shards[len(p.shards)-1]
}

// SetState transitions worker w to state at time now, accumulating the
// duration spent in the previous state. Owner-only per slot.
func (p *Profile) SetState(w int, state WorkerState, now float64) {
	wc := p.clockFor(w)
	if wc.started {
		d := now - wc.since
		if d > 0 {
			wc.accum[wc.state] += d
		}
	}
	wc.state = state
	wc.since = now
	wc.started = true
}

// Finish closes every worker's open interval at time now.
func (p *Profile) Finish(now float64) {
	for w := range p.workers {
		p.SetState(w, p.workers[w].state, now)
	}
}

// TaskCreated records a discovery event (task creation) at time now.
func (p *Profile) TaskCreated(now float64) {
	p.discMu.Lock()
	if p.createCount == 0 {
		p.firstCreate = now
	}
	p.lastCreate = now
	p.createCount++
	if !p.currentIterStarted {
		p.currentIterStart = now
		p.currentIterStarted = true
	}
	p.discMu.Unlock()
}

// IterationEnd marks the end of a discovery iteration at time now,
// recording that iteration's discovery span (first creation in the
// iteration to now is an overestimate; we use last creation).
func (p *Profile) IterationEnd(now float64) {
	p.discMu.Lock()
	if p.currentIterStarted {
		p.discoveryPerIter = append(p.discoveryPerIter, p.lastCreate-p.currentIterStart)
		p.discoveryAccum += p.lastCreate - p.currentIterStart
		p.currentIterStarted = false
	}
	p.iterMarks = append(p.iterMarks, now)
	p.discMu.Unlock()
}

// TaskScheduled records a task execution box on the executing slot's
// shard (rec.Worker), contending only with readers.
func (p *Profile) TaskScheduled(rec TaskRecord) {
	if !p.detail {
		return
	}
	sh := p.shardFor(rec.Worker)
	sh.mu.Lock()
	sh.tasks = append(sh.tasks, rec)
	sh.mu.Unlock()
}

// CommPost records the posting of request reqID at time now.
func (p *Profile) CommPost(reqID int64, kind CommKind, bytes int, now float64) {
	p.commMu.Lock()
	p.open[reqID] = len(p.comms)
	p.comms = append(p.comms, CommRecord{ReqID: reqID, Kind: kind, Bytes: bytes, Post: now, Complete: -1})
	p.commMu.Unlock()
}

// CommComplete records successful completion (MPI_Test/Wait success).
func (p *Profile) CommComplete(reqID int64, now float64) {
	p.commMu.Lock()
	if i, ok := p.open[reqID]; ok {
		p.comms[i].Complete = now
		delete(p.open, reqID)
	}
	p.commMu.Unlock()
}

// Breakdown is the per-run summary in the units of the executor clock
// (seconds). Cumulated values sum over workers; Avg* divide by workers.
type Breakdown struct {
	Workers      int
	Work         float64
	OverheadTime float64
	IdleTime     float64
	// SkipTime is the time spent draining aborted/poisoned tasks whose
	// bodies never ran (zero outside failure scenarios).
	SkipTime      float64
	AvgWork       float64
	AvgOverhead   float64
	AvgIdle       float64
	Discovery     float64 // first-to-last creation span
	DiscoveryIter []float64
	Tasks         int64
}

// Breakdown computes the time breakdown.
func (p *Profile) Breakdown() Breakdown {
	var b Breakdown
	b.Workers = p.nWorkers
	for w := range p.workers {
		b.Work += p.workers[w].accum[Work]
		b.OverheadTime += p.workers[w].accum[Overhead]
		b.IdleTime += p.workers[w].accum[Idle]
		b.SkipTime += p.workers[w].accum[Skip]
	}
	if p.nWorkers > 0 {
		b.AvgWork = b.Work / float64(p.nWorkers)
		b.AvgOverhead = b.OverheadTime / float64(p.nWorkers)
		b.AvgIdle = b.IdleTime / float64(p.nWorkers)
	}
	p.discMu.Lock()
	if p.discoveryAccum > 0 {
		b.Discovery = p.discoveryAccum
	} else if p.createCount > 0 {
		b.Discovery = p.lastCreate - p.firstCreate
	}
	b.DiscoveryIter = append([]float64(nil), p.discoveryPerIter...)
	b.Tasks = p.createCount
	p.discMu.Unlock()
	return b
}

// Tasks returns the recorded task boxes, merged across the per-worker
// shards into a deterministic order (start time, then task ID).
func (p *Profile) Tasks() []TaskRecord {
	var out []TaskRecord
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		out = append(out, sh.tasks...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].TaskID < out[j].TaskID
	})
	return out
}

// Comms returns a copy of the communication records.
func (p *Profile) Comms() []CommRecord {
	p.commMu.Lock()
	defer p.commMu.Unlock()
	out := make([]CommRecord, len(p.comms))
	copy(out, p.comms)
	return out
}

// CommSummary is the paper's communication metric triple (§4.1): C is the
// summed communication time of send and collective requests, W the summed
// work overlapping each request on any local core, and the overlap ratio
// r = W / (nThreads * C).
type CommSummary struct {
	CommTime       float64
	OverlappedWork float64
	OverlapRatio   float64
	SendTime       float64
	CollectiveTime float64
	Requests       int
}

// CommSummary computes the communication metrics from the recorded
// requests and task boxes. Only completed Send and Collective requests
// are considered, matching the paper's methodology.
func (p *Profile) CommSummary() CommSummary {
	comms := p.Comms()
	tasks := p.Tasks()

	// Build a prefix-sum of work time over merged task intervals so
	// ov(r) = W(complete) - W(post) is O(log n) per request.
	type ev struct {
		t float64
		d int // +1 start, -1 end
	}
	evs := make([]ev, 0, 2*len(tasks))
	for _, tr := range tasks {
		evs = append(evs, ev{tr.Start, 1}, ev{tr.End, -1})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	// Collapse to distinct times; level[i] is the number of concurrently
	// executing tasks on [times[i], times[i+1]); cum[i] is the total
	// work time accumulated up to times[i].
	var times []float64
	var level []int
	cur := 0
	for i := 0; i < len(evs); {
		t := evs[i].t
		for i < len(evs) && evs[i].t == t {
			cur += evs[i].d
			i++
		}
		times = append(times, t)
		level = append(level, cur)
	}
	cum := make([]float64, len(times))
	for i := 1; i < len(times); i++ {
		cum[i] = cum[i-1] + float64(level[i-1])*(times[i]-times[i-1])
	}
	workAt := func(t float64) float64 {
		n := len(times)
		if n == 0 || t <= times[0] {
			return 0
		}
		if t >= times[n-1] {
			return cum[n-1] // level after last event is zero
		}
		i := sort.SearchFloat64s(times, t)
		if i < n && times[i] == t {
			return cum[i]
		}
		i--
		return cum[i] + float64(level[i])*(t-times[i])
	}

	var s CommSummary
	for _, c := range comms {
		if c.Complete < 0 || c.Kind == Recv {
			continue
		}
		d := c.Complete - c.Post
		s.CommTime += d
		switch c.Kind {
		case Send:
			s.SendTime += d
		case Collective:
			s.CollectiveTime += d
		}
		s.OverlappedWork += workAt(c.Complete) - workAt(c.Post)
		s.Requests++
	}
	if s.CommTime > 0 && p.nWorkers > 0 {
		s.OverlapRatio = s.OverlappedWork / (float64(p.nWorkers) * s.CommTime)
	}
	return s
}
