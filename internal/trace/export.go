package trace

import (
	"encoding/json"
	"io"

	"taskdep/internal/obs"
)

// Export is the JSON-serializable snapshot of a profile, for external
// plotting or archival (the counterpart of MPC-OMP's trace flush to
// disk, §2.3.1).
type Export struct {
	Breakdown Breakdown    `json:"breakdown"`
	Comm      CommSummary  `json:"comm"`
	Tasks     []TaskRecord `json:"tasks,omitempty"`
	Comms     []CommRecord `json:"requests,omitempty"`
}

// Snapshot builds an Export. withRecords includes the per-task and
// per-request records (can be large).
func (p *Profile) Snapshot(withRecords bool) Export {
	e := Export{
		Breakdown: p.Breakdown(),
		Comm:      p.CommSummary(),
	}
	if withRecords {
		e.Tasks = p.Tasks()
		e.Comms = p.Comms()
	}
	return e
}

// WriteJSON writes the profile snapshot as indented JSON.
func (p *Profile) WriteJSON(w io.Writer, withRecords bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot(withRecords))
}

// ReadExport parses a previously written snapshot.
func ReadExport(r io.Reader) (Export, error) {
	var e Export
	err := json.NewDecoder(r).Decode(&e)
	return e, err
}

// WriteChrome writes span events as Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing). Thin re-export of the obs encoder
// so trace consumers need only this package.
func WriteChrome(w io.Writer, events []obs.SpanEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// chromeTaskEvent is one complete ("X") Chrome trace event; the
// task-record export writes these directly instead of round-tripping
// through obs.SpanEvent so labels survive and critical-path tasks can
// carry Perfetto's color hint.
type chromeTaskEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	// Cname is the catapult reserved color name; "terrible" renders
	// red, making the critical-path chain pop out of the timeline.
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTaskTrace struct {
	TraceEvents     []chromeTaskEvent `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Meta            map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTasks converts profile task boxes (Profile.Tasks, the
// Gantt input) to Chrome trace-event JSON: each box becomes one
// complete event on its worker's tid, keeping the task label, and
// critical-path records (see MarkCritical) are colored red and tagged
// with a "critical" arg/category so Perfetto can both show and filter
// the span-defining chain. The same records drive the ASCII/SVG charts
// and this Perfetto timeline.
func WriteChromeTasks(w io.Writer, tasks []TaskRecord) error {
	out := chromeTaskTrace{
		TraceEvents:     make([]chromeTaskEvent, 0, len(tasks)),
		DisplayTimeUnit: "ns",
		Meta:            map[string]string{"source": "taskdep/internal/trace"},
	}
	for _, t := range tasks {
		ev := chromeTaskEvent{
			Name: t.Label,
			Cat:  "task",
			Ph:   "X",
			Ts:   t.Start * 1e6,
			Dur:  (t.End - t.Start) * 1e6,
			Pid:  1,
			Tid:  t.Worker,
			Args: map[string]any{"task_id": t.TaskID, "iter": t.Iter},
		}
		if ev.Name == "" {
			ev.Name = "task"
		}
		if t.Critical {
			ev.Cat = "task,critical"
			ev.Cname = "terrible"
			ev.Args["critical_path"] = true
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SpanTasks converts obs span events back into profile task boxes:
// every complete task-body span becomes a TaskRecord (seconds clock),
// so the Gantt renderers work on top of the new span stream too.
func SpanTasks(events []obs.SpanEvent) []TaskRecord {
	var out []TaskRecord
	for _, ev := range events {
		if ev.Name != obs.SpanTaskBody || ev.Kind != 'X' {
			continue
		}
		out = append(out, TaskRecord{
			TaskID: ev.TaskID,
			Label:  ev.Name.String(),
			Worker: ev.Slot,
			Iter:   ev.Iter,
			Start:  float64(ev.StartNs) / 1e9,
			End:    float64(ev.EndNs) / 1e9,
		})
	}
	return out
}
