package trace

import (
	"encoding/json"
	"io"

	"taskdep/internal/obs"
)

// Export is the JSON-serializable snapshot of a profile, for external
// plotting or archival (the counterpart of MPC-OMP's trace flush to
// disk, §2.3.1).
type Export struct {
	Breakdown Breakdown    `json:"breakdown"`
	Comm      CommSummary  `json:"comm"`
	Tasks     []TaskRecord `json:"tasks,omitempty"`
	Comms     []CommRecord `json:"requests,omitempty"`
}

// Snapshot builds an Export. withRecords includes the per-task and
// per-request records (can be large).
func (p *Profile) Snapshot(withRecords bool) Export {
	e := Export{
		Breakdown: p.Breakdown(),
		Comm:      p.CommSummary(),
	}
	if withRecords {
		e.Tasks = p.Tasks()
		e.Comms = p.Comms()
	}
	return e
}

// WriteJSON writes the profile snapshot as indented JSON.
func (p *Profile) WriteJSON(w io.Writer, withRecords bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot(withRecords))
}

// ReadExport parses a previously written snapshot.
func ReadExport(r io.Reader) (Export, error) {
	var e Export
	err := json.NewDecoder(r).Decode(&e)
	return e, err
}

// WriteChrome writes span events as Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing). Thin re-export of the obs encoder
// so trace consumers need only this package.
func WriteChrome(w io.Writer, events []obs.SpanEvent) error {
	return obs.WriteChromeTrace(w, events)
}

// WriteChromeTasks converts profile task boxes (Profile.Tasks, the
// Gantt input) to Chrome trace-event JSON: each box becomes a matched
// B/E pair on its worker's tid. This keeps the existing Gantt/record
// path exportable alongside the obs span rings — the same records
// drive both the ASCII/SVG charts and a Perfetto timeline.
func WriteChromeTasks(w io.Writer, tasks []TaskRecord) error {
	evs := make([]obs.SpanEvent, 0, len(tasks))
	for _, t := range tasks {
		evs = append(evs, obs.SpanEvent{
			Name:    obs.SpanTaskBody,
			Kind:    'X',
			Slot:    t.Worker,
			TaskID:  t.TaskID,
			Iter:    t.Iter,
			StartNs: int64(t.Start * 1e9),
			EndNs:   int64(t.End * 1e9),
		})
	}
	return obs.WriteChromeTrace(w, evs)
}

// SpanTasks converts obs span events back into profile task boxes:
// every complete task-body span becomes a TaskRecord (seconds clock),
// so the Gantt renderers work on top of the new span stream too.
func SpanTasks(events []obs.SpanEvent) []TaskRecord {
	var out []TaskRecord
	for _, ev := range events {
		if ev.Name != obs.SpanTaskBody || ev.Kind != 'X' {
			continue
		}
		out = append(out, TaskRecord{
			TaskID: ev.TaskID,
			Label:  ev.Name.String(),
			Worker: ev.Slot,
			Iter:   ev.Iter,
			Start:  float64(ev.StartNs) / 1e9,
			End:    float64(ev.EndNs) / 1e9,
		})
	}
	return out
}
