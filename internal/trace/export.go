package trace

import (
	"encoding/json"
	"io"
)

// Export is the JSON-serializable snapshot of a profile, for external
// plotting or archival (the counterpart of MPC-OMP's trace flush to
// disk, §2.3.1).
type Export struct {
	Breakdown Breakdown    `json:"breakdown"`
	Comm      CommSummary  `json:"comm"`
	Tasks     []TaskRecord `json:"tasks,omitempty"`
	Comms     []CommRecord `json:"requests,omitempty"`
}

// Snapshot builds an Export. withRecords includes the per-task and
// per-request records (can be large).
func (p *Profile) Snapshot(withRecords bool) Export {
	e := Export{
		Breakdown: p.Breakdown(),
		Comm:      p.CommSummary(),
	}
	if withRecords {
		e.Tasks = p.Tasks()
		e.Comms = p.Comms()
	}
	return e
}

// WriteJSON writes the profile snapshot as indented JSON.
func (p *Profile) WriteJSON(w io.Writer, withRecords bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Snapshot(withRecords))
}

// ReadExport parses a previously written snapshot.
func ReadExport(r io.Reader) (Export, error) {
	var e Export
	err := json.NewDecoder(r).Decode(&e)
	return e, err
}
