package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestBreakdownAccumulatesStates(t *testing.T) {
	p := New(2, false)
	// worker 0: idle [0,1), work [1,3), overhead [3,4)
	p.SetState(0, Idle, 0)
	p.SetState(0, Work, 1)
	p.SetState(0, Overhead, 3)
	p.SetState(0, Idle, 4)
	// worker 1: work [0,4)
	p.SetState(1, Work, 0)
	p.Finish(4)
	b := p.Breakdown()
	if !almost(b.Work, 2+4) || !almost(b.OverheadTime, 1) || !almost(b.IdleTime, 1) {
		t.Fatalf("breakdown = %+v", b)
	}
	if !almost(b.AvgWork, 3) {
		t.Fatalf("avg work = %v", b.AvgWork)
	}
}

func TestDiscoveryWindow(t *testing.T) {
	p := New(1, false)
	p.TaskCreated(1.5)
	p.TaskCreated(2.0)
	p.TaskCreated(7.25)
	b := p.Breakdown()
	if !almost(b.Discovery, 7.25-1.5) {
		t.Fatalf("discovery = %v", b.Discovery)
	}
	if b.Tasks != 3 {
		t.Fatalf("tasks = %d", b.Tasks)
	}
}

func TestDiscoveryPerIteration(t *testing.T) {
	p := New(1, false)
	p.TaskCreated(0)
	p.TaskCreated(1)
	p.IterationEnd(1.5)
	p.TaskCreated(2)
	p.TaskCreated(2.1)
	p.IterationEnd(3)
	b := p.Breakdown()
	if len(b.DiscoveryIter) != 2 {
		t.Fatalf("iters = %v", b.DiscoveryIter)
	}
	if !almost(b.DiscoveryIter[0], 1) || !almost(b.DiscoveryIter[1], 0.1) {
		t.Fatalf("per-iter discovery = %v", b.DiscoveryIter)
	}
	if !almost(b.Discovery, 1.1) {
		t.Fatalf("total discovery = %v", b.Discovery)
	}
}

func TestCommSummaryOverlap(t *testing.T) {
	p := New(2, true)
	// Two tasks execute during the request window.
	p.TaskScheduled(TaskRecord{TaskID: 1, Worker: 0, Start: 0, End: 10})
	p.TaskScheduled(TaskRecord{TaskID: 2, Worker: 1, Start: 2, End: 6})
	p.CommPost(1, Send, 1024, 1)
	p.CommComplete(1, 5)
	s := p.CommSummary()
	if !almost(s.CommTime, 4) {
		t.Fatalf("comm time = %v", s.CommTime)
	}
	// Overlapped work: worker0 contributes [1,5] = 4, worker1 [2,5] = 3.
	if !almost(s.OverlappedWork, 7) {
		t.Fatalf("overlapped = %v", s.OverlappedWork)
	}
	if !almost(s.OverlapRatio, 7.0/(2*4)) {
		t.Fatalf("ratio = %v", s.OverlapRatio)
	}
}

func TestCommSummarySkipsRecvAndIncomplete(t *testing.T) {
	p := New(1, true)
	p.TaskScheduled(TaskRecord{TaskID: 1, Worker: 0, Start: 0, End: 10})
	p.CommPost(1, Recv, 10, 0)
	p.CommComplete(1, 5)
	p.CommPost(2, Send, 10, 0) // never completes
	p.CommPost(3, Collective, 10, 2)
	p.CommComplete(3, 4)
	s := p.CommSummary()
	if s.Requests != 1 || !almost(s.CommTime, 2) || !almost(s.CollectiveTime, 2) || !almost(s.SendTime, 0) {
		t.Fatalf("summary = %+v", s)
	}
}

// TestPropertyOverlapMatchesBruteForce cross-checks the prefix-sum
// overlap computation against direct interval intersection.
func TestPropertyOverlapMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(4, true)
		type iv struct{ s, e float64 }
		var ivs []iv
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			s := rng.Float64() * 100
			e := s + rng.Float64()*20
			ivs = append(ivs, iv{s, e})
			p.TaskScheduled(TaskRecord{TaskID: int64(i), Worker: rng.Intn(4), Start: s, End: e})
		}
		var reqs []iv
		m := rng.Intn(8) + 1
		for j := 0; j < m; j++ {
			s := rng.Float64() * 110
			e := s + rng.Float64()*30
			reqs = append(reqs, iv{s, e})
			p.CommPost(int64(j), Send, 1, s)
			p.CommComplete(int64(j), e)
		}
		want := 0.0
		for _, r := range reqs {
			for _, v := range ivs {
				lo := math.Max(r.s, v.s)
				hi := math.Min(r.e, v.e)
				if hi > lo {
					want += hi - lo
				}
			}
		}
		got := p.CommSummary().OverlappedWork
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGanttASCII(t *testing.T) {
	g := &Gantt{Tasks: []TaskRecord{
		{TaskID: 1, Label: "a", Worker: 0, Iter: 0, Start: 0, End: 1},
		{TaskID: 2, Label: "b", Worker: 1, Iter: 1, Start: 0.5, End: 2},
	}}
	var sb strings.Builder
	if err := g.WriteASCII(&sb, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "worker  0") || !strings.Contains(out, "worker  1") {
		t.Fatalf("missing rows:\n%s", out)
	}
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Fatalf("missing glyphs:\n%s", out)
	}
}

func TestGanttSVG(t *testing.T) {
	g := &Gantt{Tasks: []TaskRecord{
		{TaskID: 1, Label: "a", Worker: 0, Iter: 0, Start: 0, End: 1},
		{TaskID: 2, Label: "b", Worker: 2, Iter: 3, Start: 0.5, End: 2},
	}}
	var sb strings.Builder
	if err := g.WriteSVG(&sb, 500, 16); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "<svg") || strings.Count(out, "<rect") != 2 {
		t.Fatalf("bad svg:\n%s", out)
	}
}

func TestGanttClipWindow(t *testing.T) {
	g := &Gantt{
		Tasks: []TaskRecord{
			{TaskID: 1, Worker: 0, Start: 0, End: 1},
			{TaskID: 2, Worker: 0, Start: 5, End: 6},
		},
		T0: 4, T1: 7,
	}
	_, _, _, recs := g.bounds()
	if len(recs) != 1 || recs[0].TaskID != 2 {
		t.Fatalf("clip failed: %+v", recs)
	}
}

func TestWorkAtMonotone(t *testing.T) {
	p := New(1, true)
	p.TaskScheduled(TaskRecord{Start: 1, End: 3})
	p.TaskScheduled(TaskRecord{Start: 2, End: 5})
	// Probe via CommSummary with point requests at increasing times.
	prev := -1.0
	for i := 0; i <= 60; i++ {
		tm := float64(i) * 0.1
		q := New(1, true)
		q.TaskScheduled(TaskRecord{Start: 1, End: 3})
		q.TaskScheduled(TaskRecord{Start: 2, End: 5})
		q.CommPost(1, Send, 1, 0)
		q.CommComplete(1, tm)
		w := q.CommSummary().OverlappedWork
		if w < prev-1e-12 {
			t.Fatalf("workAt not monotone at t=%v: %v < %v", tm, w, prev)
		}
		prev = w
	}
	// Total work must equal sum of durations.
	if !almost(prev, 2+3) {
		t.Fatalf("total work = %v, want 5", prev)
	}
}

func TestJSONExportRoundTrip(t *testing.T) {
	p := New(2, true)
	p.SetState(0, Work, 0)
	p.SetState(0, Idle, 2)
	p.TaskCreated(0.5)
	p.TaskScheduled(TaskRecord{TaskID: 1, Label: "k", Worker: 0, Start: 0, End: 2})
	p.CommPost(1, Send, 64, 0.1)
	p.CommComplete(1, 0.9)
	p.Finish(3)

	var sb strings.Builder
	if err := p.WriteJSON(&sb, true); err != nil {
		t.Fatal(err)
	}
	e, err := ReadExport(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(e.Breakdown.Work, 2) || e.Breakdown.Tasks != 1 {
		t.Fatalf("breakdown = %+v", e.Breakdown)
	}
	if len(e.Tasks) != 1 || e.Tasks[0].Label != "k" {
		t.Fatalf("tasks = %+v", e.Tasks)
	}
	if len(e.Comms) != 1 || !almost(e.Comm.CommTime, 0.8) {
		t.Fatalf("comm = %+v / %+v", e.Comms, e.Comm)
	}
	// Without records: compact.
	var sb2 strings.Builder
	if err := p.WriteJSON(&sb2, false); err != nil {
		t.Fatal(err)
	}
	e2, err := ReadExport(strings.NewReader(sb2.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Tasks) != 0 {
		t.Fatalf("records leaked into compact export")
	}
}
