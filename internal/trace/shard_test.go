package trace

import (
	"sync"
	"testing"
)

// TestProducerSlotDoesNotAliasWorkerZero is the regression test for the
// producer-as-consumer slot: worker index == nWorkers (the producer's
// deque slot) must map to a valid clock and shard without panicking and
// without folding its samples into worker 0's accumulators.
func TestProducerSlotDoesNotAliasWorkerZero(t *testing.T) {
	const nWorkers = 2
	p := New(nWorkers, true)

	// Producer slot and a plainly out-of-range slot: both must be safe.
	for _, w := range []int{nWorkers, -1, nWorkers + 5} {
		p.SetState(w, Work, 0)
		p.SetState(w, Idle, 1)
		p.TaskScheduled(TaskRecord{TaskID: int64(100 + w), Worker: w, Start: 0, End: 1})
	}
	p.SetState(0, Work, 0)
	p.SetState(0, Idle, 0.25)
	p.Finish(2)

	// Worker 0 spent 0.25s working; the three spill-slot intervals (1s
	// each) must land on the spill clock, not worker 0's.
	if got := p.workers[0].accum[Work]; got != 0.25 {
		t.Fatalf("worker 0 work = %g, want 0.25 (spill slots aliased into worker 0)", got)
	}
	if got := p.workers[nWorkers].accum[Work]; got != 3 {
		t.Fatalf("spill clock work = %g, want 3", got)
	}

	// All three spill task boxes survive the merge with their original
	// worker IDs intact.
	tasks := p.Tasks()
	byWorker := map[int]int{}
	for _, r := range tasks {
		byWorker[r.Worker]++
	}
	for _, w := range []int{nWorkers, -1, nWorkers + 5} {
		if byWorker[w] != 1 {
			t.Fatalf("spill slot %d has %d task records, want 1 (tasks: %+v)", w, byWorker[w], tasks)
		}
	}
}

// TestShardedTaskScheduledConcurrent drives TaskScheduled from every
// worker slot, the producer slot, and an out-of-range slot concurrently
// with Tasks() merges — the -race proof of the sharded recorder.
func TestShardedTaskScheduledConcurrent(t *testing.T) {
	const nWorkers = 4
	const perSlot = 2000
	p := New(nWorkers, true)
	slots := []int{0, 1, 2, 3, nWorkers, -1}
	var wg sync.WaitGroup
	for _, w := range slots {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perSlot; i++ {
				if w >= 0 && w < nWorkers {
					// Clocks are owner-only; the two spill slots share
					// one clock, so only addressable slots tick theirs.
					p.SetState(w, Work, float64(i))
				}
				p.TaskScheduled(TaskRecord{TaskID: int64(i), Worker: w, Start: float64(i), End: float64(i) + 0.5})
			}
		}(w)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = p.Tasks()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	got := p.Tasks()
	if want := len(slots) * perSlot; len(got) != want {
		t.Fatalf("merged %d task records, want %d", len(got), want)
	}
	// Merge order contract: sorted by (Start, TaskID).
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Start > b.Start || (a.Start == b.Start && a.TaskID > b.TaskID) {
			t.Fatalf("Tasks() not sorted at %d: %+v before %+v", i, a, b)
		}
	}
}
