package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Gantt renders recorded task boxes as the paper's Fig. 8: one row per
// worker, one glyph/color per iteration, so the inter-iteration barrier
// introduced by the persistent TDG is visible as vertical alignment.
type Gantt struct {
	Tasks []TaskRecord
	// T0/T1 clip the rendered window; zero values mean full range.
	T0, T1 float64
}

// iterGlyphs color iterations in ASCII output.
var iterGlyphs = []byte("0123456789abcdefghijklmnopqrstuvwxyz")

// bounds returns the time range and worker count of the clipped records.
func (g *Gantt) bounds() (t0, t1 float64, workers int, recs []TaskRecord) {
	t0, t1 = g.T0, g.T1
	if t1 <= t0 {
		first := true
		for _, r := range g.Tasks {
			if first || r.Start < t0 {
				t0 = r.Start
			}
			if first || r.End > t1 {
				t1 = r.End
			}
			first = false
		}
	}
	for _, r := range g.Tasks {
		if r.End <= t0 || r.Start >= t1 {
			continue
		}
		recs = append(recs, r)
		if r.Worker+1 > workers {
			workers = r.Worker + 1
		}
	}
	return t0, t1, workers, recs
}

// WriteASCII renders a width-column text chart to w.
func (g *Gantt) WriteASCII(w io.Writer, width int) error {
	if width < 10 {
		width = 80
	}
	t0, t1, workers, recs := g.bounds()
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "(empty gantt)")
		return err
	}
	span := t1 - t0
	rows := make([][]byte, workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
	// Critical-path boxes render in a second pass so column rounding
	// can never bury the overlay under a neighbouring box.
	for _, critical := range []bool{false, true} {
		for _, r := range recs {
			if r.Critical != critical {
				continue
			}
			c0 := int(float64(width) * (r.Start - t0) / span)
			c1 := int(float64(width) * (r.End - t0) / span)
			if c1 <= c0 {
				c1 = c0 + 1
			}
			if c1 > width {
				c1 = width
			}
			glyph := iterGlyphs[r.Iter%len(iterGlyphs)]
			if critical {
				glyph = '#' // critical-path overlay: span-defining tasks
			}
			for c := c0; c < c1; c++ {
				if c >= 0 && c < width {
					rows[r.Worker][c] = glyph
				}
			}
		}
	}
	if _, err := fmt.Fprintf(w, "gantt [%.6f, %.6f]s, glyph = iteration mod %d, # = critical path\n", t0, t1, len(iterGlyphs)); err != nil {
		return err
	}
	for i, row := range rows {
		if _, err := fmt.Fprintf(w, "worker %2d |%s|\n", i, row); err != nil {
			return err
		}
	}
	return nil
}

// svgPalette colors iterations in SVG output.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteSVG renders an SVG chart to w.
func (g *Gantt) WriteSVG(w io.Writer, pxWidth, rowHeight int) error {
	if pxWidth <= 0 {
		pxWidth = 1000
	}
	if rowHeight <= 0 {
		rowHeight = 18
	}
	t0, t1, workers, recs := g.bounds()
	if len(recs) == 0 {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg"/>`)
		return err
	}
	span := t1 - t0
	h := workers*rowHeight + 20
	if _, err := fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", pxWidth+80, h); err != nil {
		return err
	}
	for i := 0; i < workers; i++ {
		fmt.Fprintf(w, `<text x="0" y="%d" font-size="10">w%d</text>`+"\n", i*rowHeight+12, i)
	}
	for _, r := range recs {
		x := 60 + float64(pxWidth)*(r.Start-t0)/span
		wd := float64(pxWidth) * (r.End - r.Start) / span
		if wd < 0.5 {
			wd = 0.5
		}
		y := r.Worker * rowHeight
		color := svgPalette[r.Iter%len(svgPalette)]
		// Critical-path tasks get a heavy dark-red outline over the
		// iteration fill, so the span-defining chain reads at a glance.
		stroke := ""
		mark := ""
		if r.Critical {
			stroke = ` stroke="#b30000" stroke-width="2"`
			mark = " [critical path]"
		}
		fmt.Fprintf(w, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s"%s><title>%s it%d [%.6f,%.6f]%s</title></rect>`+"\n",
			x, y+2, wd, rowHeight-4, color, stroke, r.Label, r.Iter, r.Start, r.End, mark)
	}
	_, err := fmt.Fprint(w, "</svg>\n")
	return err
}
