// Package trace implements the profiler of the reproduction, modeled on
// the MPC-OMP profiler described in the paper (§2.3.1): it records task
// schedule/creation events, computes the parallel time breakdown of
// Tallent & Mellor-Crummey adapted to dependent tasks — work is time
// inside a task body, overhead is time outside a body while ready tasks
// exist, idleness is time outside a body with no ready task — and, with
// the PMPI-style extension of §4.1, communication time and overlap ratio.
//
// All timestamps are float64 seconds from an executor-supplied clock so
// the same profile works for wall-clock (internal/rt) and virtual time
// (internal/sim).
//
// # Layout
//
// trace.go holds the Profile accumulator (worker states, task records,
// iteration marks) and the Breakdown computation; gantt.go renders the
// recorded schedule as ASCII or SVG Gantt charts; export.go serializes
// profiles for offline tooling (cmd/gantt).
package trace
