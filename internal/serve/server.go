package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"taskdep/internal/cpath"
	"taskdep/internal/fault"
)

// Server is the HTTP front end over a tenant Manager. Build one with
// New, mount Handler on a listener (cmd/tdgserve uses obs.Serve), and
// Shutdown when done.
type Server struct {
	m     *Manager
	start time.Time

	requests    atomic.Int64 // POST /v1/graphs accepted past validation
	rejected    atomic.Int64 // 429s (tenant or global quota)
	badRequests atomic.Int64 // 4xx validation failures
	graphErrors atomic.Int64 // streams that ended in an error event
	disconnects atomic.Int64 // streams whose client went away
}

// New builds a Server with its own Manager.
func New(opt Options) *Server {
	return &Server{m: NewManager(opt), start: time.Now()}
}

// Manager exposes the tenant pool (tests, cmd wiring).
func (s *Server) Manager() *Manager { return s.m }

// Shutdown tears down every tenant runtime.
func (s *Server) Shutdown() { s.m.CloseAll() }

// Handler returns the service mux:
//
//	POST   /v1/graphs                 submit a graph, stream NDJSON events
//	GET    /v1/tenants                tenant list with stats
//	DELETE /v1/tenants/{name}         tear a tenant down
//	GET    /v1/tenants/{name}/metrics the tenant runtime's Prometheus text
//	GET    /v1/tenants/{name}/graphz  the tenant runtime's live snapshot
//	GET    /v1/tenants/{name}/criticalpath  last critical-path window + what-if
//	GET    /metrics                   service-level + tenant-labeled series
//	GET    /graphz                    service snapshot (all tenants)
//	GET    /healthz                   liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", s.handleGraphs)
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("DELETE /v1/tenants/{name}", s.handleTenantDelete)
	mux.HandleFunc("GET /v1/tenants/{name}/metrics", s.handleTenantMetrics)
	mux.HandleFunc("GET /v1/tenants/{name}/graphz", s.handleTenantGraphz)
	mux.HandleFunc("GET /v1/tenants/{name}/criticalpath", s.handleTenantCriticalPath)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /graphz", s.handleGraphz)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// tenantOf resolves the request's tenant name: X-Tenant header, then
// ?tenant=, then "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	var req GraphRequest
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if err := req.Validate(); err != nil {
		s.badRequests.Add(1)
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	name := tenantOf(r)
	tn, err := s.m.Tenant(name)
	if err != nil {
		switch {
		case errors.Is(err, ErrPoolFull):
			s.rejected.Add(1)
			httpError(w, http.StatusTooManyRequests, "%v", err)
		default:
			s.badRequests.Add(1)
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	release, err := s.m.Admit(tn)
	if err != nil {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	defer release()
	s.requests.Add(1)

	// Event buffer sized so emitters (task bodies on tenant workers)
	// never block on a slow or gone client: one transition per task,
	// every possible result, the error tail and bookends.
	nProvides := 0
	for i := range req.Tasks {
		nProvides += len(req.Tasks[i].Provide)
	}
	events := make(chan Event, len(req.Tasks)+nProvides+maxErrorEvents+8)
	emit := func(e Event) { events <- e }

	go func() {
		defer close(events)
		t0 := time.Now()
		err := tn.Run(r.Context(), &req, emit)
		if err != nil {
			s.graphErrors.Add(1)
			if r.Context().Err() != nil {
				s.disconnects.Add(1)
			}
			emitErrors(emit, err)
		}
		iters := req.Repeat
		if iters < 1 {
			iters = 1
		}
		emit(Event{Type: "done", Iters: iters, Elapsed: time.Since(t0).Seconds()})
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	writeEvent := func(e Event) {
		seq++
		e.Seq = seq
		_ = enc.Encode(e)
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeEvent(Event{Type: "accepted", Key: name})
	for e := range events {
		writeEvent(e)
	}
}

// maxErrorEvents bounds the error tail of a stream: the primary
// failure plus a few siblings from the same window.
const maxErrorEvents = 8

// emitErrors renders a drain error as stream events: TaskErrors get
// the failing task's label, plain errors just the message.
func emitErrors(emit func(Event), err error) {
	var te *fault.TaskError
	if !errors.As(err, &te) {
		emit(Event{Type: "error", Err: err.Error()})
		return
	}
	emit(Event{Type: "error", Task: te.Label, Err: te.Cause.Error()})
	var sibs []error
	if te.Siblings != nil {
		if joined, ok := te.Siblings.(interface{ Unwrap() []error }); ok {
			sibs = joined.Unwrap()
		} else {
			sibs = []error{te.Siblings}
		}
	}
	n := 1
	for _, sib := range sibs {
		if n >= maxErrorEvents {
			break
		}
		var st *fault.TaskError
		if errors.As(sib, &st) {
			emit(Event{Type: "error", Task: st.Label, Err: st.Cause.Error()})
		} else {
			emit(Event{Type: "error", Err: sib.Error()})
		}
		n++
	}
}

func (s *Server) handleTenants(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.m.Snapshot())
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.m.Close(name) {
		httpError(w, http.StatusNotFound, "serve: no tenant %q", name)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTenantMetrics(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.m.Lookup(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "serve: no tenant %q", r.PathValue("name"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = tn.Runtime().Obs().WriteMetrics(w)
}

func (s *Server) handleTenantGraphz(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.m.Lookup(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "serve: no tenant %q", r.PathValue("name"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(tn.Runtime().Introspect())
}

// tenantCPSummary is the per-tenant critical-path payload: the
// runtime's last window report plus a coarse classification of what
// bounds the tenant's graphs — the service-level answer to the paper's
// question ("is discovery on this workload's critical path?").
type tenantCPSummary struct {
	Tenant  string        `json:"tenant"`
	Enabled bool          `json:"enabled"`
	Report  *cpath.Report `json:"report,omitempty"`
	// Bound names the dominant critical-path component: "discovery",
	// "ready-wait" or "execute". Empty until a window completes.
	Bound string `json:"bound,omitempty"`
	// DiscoveryImpacted is true when eliminating discovery would shrink
	// the projected makespan by more than 5% (WhatIf.Speedup > 1.05).
	DiscoveryImpacted bool `json:"discovery_impacted"`
}

// classifyCP derives the summary's classification fields from a report.
func classifyCP(rep *cpath.Report) (bound string, impacted bool) {
	if rep == nil {
		return "", false
	}
	bound = "execute"
	max := rep.CPExecNs
	if rep.CPWaitNs > max {
		bound, max = "ready-wait", rep.CPWaitNs
	}
	if rep.CPDiscNs > max {
		bound = "discovery"
	}
	return bound, rep.WhatIf.Speedup > 1.05
}

func (s *Server) handleTenantCriticalPath(w http.ResponseWriter, r *http.Request) {
	tn, ok := s.m.Lookup(r.PathValue("name"))
	if !ok {
		httpError(w, http.StatusNotFound, "serve: no tenant %q", r.PathValue("name"))
		return
	}
	sum := tenantCPSummary{
		Tenant:  tn.Name(),
		Enabled: tn.Runtime().CPathProfiler() != nil,
		Report:  tn.Runtime().CriticalPath(),
	}
	if !sum.Enabled {
		httpError(w, http.StatusNotFound, "serve: tenant %q has critical-path profiling disabled (serve.Options.CPath)", tn.Name())
		return
	}
	sum.Bound, sum.DiscoveryImpacted = classifyCP(sum.Report)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(sum)
}

// handleMetrics writes the service-level series plus one
// tenant-labeled row per tenant per series, Prometheus text format.
// Deep runtime series live at /v1/tenants/{name}/metrics — keeping
// them per-tenant avoids colliding the runtimes' unlabeled series.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.m.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	bool01 := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	fmt.Fprintf(w, "# TYPE tdgserve_requests_total counter\ntdgserve_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# TYPE tdgserve_rejected_total counter\ntdgserve_rejected_total %d\n", s.rejected.Load())
	fmt.Fprintf(w, "# TYPE tdgserve_bad_requests_total counter\ntdgserve_bad_requests_total %d\n", s.badRequests.Load())
	fmt.Fprintf(w, "# TYPE tdgserve_graph_errors_total counter\ntdgserve_graph_errors_total %d\n", s.graphErrors.Load())
	fmt.Fprintf(w, "# TYPE tdgserve_disconnects_total counter\ntdgserve_disconnects_total %d\n", s.disconnects.Load())
	fmt.Fprintf(w, "# TYPE tdgserve_inflight gauge\ntdgserve_inflight %d\n", s.m.Inflight())
	fmt.Fprintf(w, "# TYPE tdgserve_tenants gauge\ntdgserve_tenants %d\n", len(snap))
	fmt.Fprintf(w, "# TYPE tdgserve_pressure gauge\ntdgserve_pressure %d\n", bool01(s.m.Pressured()))
	fmt.Fprintf(w, "# TYPE tdgserve_uptime_seconds gauge\ntdgserve_uptime_seconds %.3f\n", time.Since(s.start).Seconds())
	for _, series := range []struct {
		name string
		get  func(TenantSnap) int64
	}{
		{"tdgserve_tenant_submissions_total", func(t TenantSnap) int64 { return t.Submissions }},
		{"tdgserve_tenant_tasks_total", func(t TenantSnap) int64 { return t.Tasks }},
		{"tdgserve_tenant_failures_total", func(t TenantSnap) int64 { return t.Failures }},
		{"tdgserve_tenant_rejected_total", func(t TenantSnap) int64 { return t.Rejected }},
		{"tdgserve_tenant_inflight", func(t TenantSnap) int64 { return t.Inflight }},
		{"tdgserve_tenant_live_tasks", func(t TenantSnap) int64 { return t.Runtime.Live }},
	} {
		for _, n := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", series.name, n, series.get(snap[n]))
		}
	}
}

// Graphz is the service-level /graphz payload.
type Graphz struct {
	Inflight  int64                 `json:"inflight"`
	Pressured bool                  `json:"pressured"`
	Options   Options               `json:"options"`
	Tenants   map[string]TenantSnap `json:"tenants"`
}

func (s *Server) handleGraphz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Graphz{
		Inflight:  s.m.Inflight(),
		Pressured: s.m.Pressured(),
		Options:   s.m.Options(),
		Tenants:   s.m.Snapshot(),
	})
}
