// Package serve is the graph-as-a-service front end: a multi-tenant
// HTTP/JSON facade over the taskdep runtime. Clients POST task graphs
// written against the typed key/value dataflow model (internal/values)
// — each task names an operator from a fixed registry, the value slots
// it consumes and the slots it provides — and stream back per-task
// state transitions and final slot values as NDJSON while the graph
// executes.
//
// Tenancy model: every tenant owns a private Runtime (its own workers,
// graph, metrics registry and failure domain) drawn from a bounded
// pool, so a tenant whose tasks fail or spin never perturbs another
// tenant's results — poison cones stop at the runtime boundary.
// Within a tenant, requests serialize on the runtime's single-producer
// contract; across tenants they run concurrently. Admission control is
// two-level: a per-tenant queue quota and a global in-flight cap, both
// rejecting with 429 rather than queueing unboundedly. When global
// occupancy crosses a high-water mark the server tightens every
// tenant's throttle windows (Runtime.SetThrottle — the same actuator
// the self-tuner drives), shrinking per-tenant discovery frontiers
// instead of failing requests; the windows reopen when load drains.
package serve

import (
	"encoding/json"
	"fmt"
)

// Wire limits, enforced before any task is submitted. They bound the
// work a single request can pin regardless of tenant quotas.
const (
	// MaxTasks bounds the tasks in one submitted graph.
	MaxTasks = 4096
	// MaxRepeat bounds persistent re-execution of one graph.
	MaxRepeat = 1024
	// MaxNameLen bounds value-slot and label names.
	MaxNameLen = 128
	// MaxArgBytes bounds one task's JSON argument.
	MaxArgBytes = 1 << 16
	// MaxBodyBytes bounds the whole request body.
	MaxBodyBytes = 1 << 22
)

// TaskWire is one task in a submitted graph: an operator applied to
// consumed slots, its result stored into provided slots. The slot
// lists lower exactly onto the runtime's dependence types
// (consume→in, provide→out, update→inout) via internal/values.
type TaskWire struct {
	// Label names the task in stream events and error reports;
	// defaults to "task-<index>".
	Label string `json:"label,omitempty"`
	// Op selects the operator from the registry (see Ops).
	Op string `json:"op"`
	// Arg is the operator's JSON argument (e.g. the literal for
	// "const", the iteration count for "spin").
	Arg json.RawMessage `json:"arg,omitempty"`
	// Consume lists slots read by the task (in dependences).
	Consume []string `json:"consume,omitempty"`
	// Provide lists slots written by the task (out dependences).
	Provide []string `json:"provide,omitempty"`
	// Update lists slots read and rewritten in place (inout
	// dependences). Their prior values are appended to the operator's
	// inputs after Consume.
	Update []string `json:"update,omitempty"`
}

// GraphRequest is the POST /v1/graphs payload.
type GraphRequest struct {
	// Tasks in submission order. Sequential semantics apply, exactly
	// as for OpenMP depend clauses: a consumed slot must have been
	// provided (or updated) by an earlier task in the list.
	Tasks []TaskWire `json:"tasks"`
	// Repeat > 1 re-executes the graph that many times through the
	// runtime's persistent frozen-replay path (the paper's
	// optimization (p)): the graph is discovered once and replayed as
	// a compiled schedule. Default 1.
	Repeat int `json:"repeat,omitempty"`
	// Results names the slots to report when the graph drains; empty
	// means every provided slot.
	Results []string `json:"results,omitempty"`
}

// Event is one NDJSON stream record. Seq is a per-request monotone
// sequence number so clients can detect truncated streams.
type Event struct {
	// Type is "accepted", "task", "result", "error" or "done".
	Type string `json:"type"`
	Seq  int    `json:"seq"`
	// Task and State describe a task transition ("done" events are
	// emitted on a task's first completed execution).
	Task  string `json:"task,omitempty"`
	State string `json:"state,omitempty"`
	// Key and Value report one result slot.
	Key   string `json:"key,omitempty"`
	Value any    `json:"value,omitempty"`
	// Err carries the failure for "error" events.
	Err string `json:"error,omitempty"`
	// Iters reports the executed iteration count on "done".
	Iters int `json:"iters,omitempty"`
	// Elapsed reports wall seconds on "done".
	Elapsed float64 `json:"elapsed,omitempty"`
}

// Validate checks the request against the wire limits and sequential
// dataflow semantics without touching any runtime. It returns a
// descriptive error naming the first offending task.
func (g *GraphRequest) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("serve: empty graph")
	}
	if len(g.Tasks) > MaxTasks {
		return fmt.Errorf("serve: %d tasks exceeds limit %d", len(g.Tasks), MaxTasks)
	}
	if g.Repeat < 0 || g.Repeat > MaxRepeat {
		return fmt.Errorf("serve: repeat %d out of range [0,%d]", g.Repeat, MaxRepeat)
	}
	provided := make(map[string]bool)
	for i := range g.Tasks {
		t := &g.Tasks[i]
		if len(t.Arg) > MaxArgBytes {
			return fmt.Errorf("serve: task %s: arg exceeds %d bytes", t.Name(i), MaxArgBytes)
		}
		if _, ok := Ops[t.Op]; !ok {
			return fmt.Errorf("serve: task %s: unknown op %q", t.Name(i), t.Op)
		}
		for _, set := range [][]string{t.Consume, t.Provide, t.Update} {
			for _, n := range set {
				if n == "" || len(n) > MaxNameLen {
					return fmt.Errorf("serve: task %s: bad slot name %q", t.Name(i), n)
				}
			}
		}
		if len(t.Label) > MaxNameLen {
			return fmt.Errorf("serve: task %d: label too long", i)
		}
		// Sequential semantics: reads must follow a write in
		// submission order. The taskdeplint unprovided-consume rule
		// catches the same mistake statically in Go clients.
		for _, n := range t.Consume {
			if !provided[n] {
				return fmt.Errorf("serve: task %s: consumes %q which no earlier task provides", t.Name(i), n)
			}
		}
		for _, n := range t.Update {
			if !provided[n] {
				return fmt.Errorf("serve: task %s: updates %q which no earlier task provides", t.Name(i), n)
			}
		}
		for _, n := range t.Provide {
			provided[n] = true
		}
	}
	for _, n := range g.Results {
		if !provided[n] {
			return fmt.Errorf("serve: result slot %q is never provided", n)
		}
	}
	return nil
}

// Name returns the task's label, defaulting to its index.
func (t *TaskWire) Name(i int) string {
	if t.Label != "" {
		return t.Label
	}
	return fmt.Sprintf("task-%d", i)
}
