package serve

import (
	"encoding/json"
	"fmt"
	"strings"
)

// OpFunc is a server-side operator: it receives the task's JSON
// argument and the values of its Consume slots followed by its Update
// slots, and returns the value stored into every Provide and Update
// slot. A non-nil error aborts the task and poisons its consumer cone,
// exactly like a failing Spec.Do.
//
// Clients submit data, not code, so the executable surface is this
// fixed registry; it is deliberately small but covers literals,
// arithmetic reductions, string assembly, synthetic load and failure
// injection — enough to express the benchmark graphs and to exercise
// every runtime path the native API reaches.
type OpFunc func(arg json.RawMessage, in []any) (any, error)

// Ops is the operator registry keyed by TaskWire.Op.
var Ops = map[string]OpFunc{
	"const":  opConst,
	"sum":    opSum,
	"mul":    opMul,
	"concat": opConcat,
	"pass":   opPass,
	"spin":   opSpin,
	"fail":   opFail,
}

// OpNames returns the registered operator names (order unspecified).
func OpNames() []string {
	out := make([]string, 0, len(Ops))
	for k := range Ops {
		out = append(out, k)
	}
	return out
}

// opConst returns its argument decoded as a JSON value.
func opConst(arg json.RawMessage, _ []any) (any, error) {
	if len(arg) == 0 {
		return nil, fmt.Errorf("const: missing arg")
	}
	var v any
	if err := json.Unmarshal(arg, &v); err != nil {
		return nil, fmt.Errorf("const: %w", err)
	}
	return v, nil
}

func numeric(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case nil:
		return 0, false
	}
	return 0, false
}

// opSum adds its numeric inputs plus an optional numeric arg.
func opSum(arg json.RawMessage, in []any) (any, error) {
	s, err := argNumber(arg, 0)
	if err != nil {
		return nil, fmt.Errorf("sum: %w", err)
	}
	for i, v := range in {
		n, ok := numeric(v)
		if !ok {
			return nil, fmt.Errorf("sum: input %d is %T, not a number", i, v)
		}
		s += n
	}
	return s, nil
}

// opMul multiplies its numeric inputs (and the optional numeric arg).
func opMul(arg json.RawMessage, in []any) (any, error) {
	p, err := argNumber(arg, 1)
	if err != nil {
		return nil, fmt.Errorf("mul: %w", err)
	}
	for i, v := range in {
		n, ok := numeric(v)
		if !ok {
			return nil, fmt.Errorf("mul: input %d is %T, not a number", i, v)
		}
		p *= n
	}
	return p, nil
}

// opConcat joins the inputs' string forms; a string arg is the
// separator.
func opConcat(arg json.RawMessage, in []any) (any, error) {
	sep := ""
	if len(arg) > 0 {
		if err := json.Unmarshal(arg, &sep); err != nil {
			return nil, fmt.Errorf("concat: %w", err)
		}
	}
	parts := make([]string, len(in))
	for i, v := range in {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, sep), nil
}

// opPass forwards its first input unchanged (a rename/fan-out node).
func opPass(_ json.RawMessage, in []any) (any, error) {
	if len(in) == 0 {
		return nil, fmt.Errorf("pass: no input")
	}
	return in[0], nil
}

// spinCap bounds synthetic work per task so a hostile client cannot
// pin a tenant's worker indefinitely with one task.
const spinCap = 50_000_000

// opSpin burns arg iterations of integer work — synthetic load for
// benchmarks and for holding a tenant busy in tests. Returns the
// folded value so the loop cannot be optimized away.
func opSpin(arg json.RawMessage, in []any) (any, error) {
	n, err := argNumber(arg, 1000)
	if err != nil {
		return nil, fmt.Errorf("spin: %w", err)
	}
	iters := int(n)
	if iters < 0 || iters > spinCap {
		return nil, fmt.Errorf("spin: %d out of range [0,%d]", iters, spinCap)
	}
	acc := uint64(len(in) + 1)
	for i := 0; i < iters; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return float64(acc % 1e9), nil
}

// opFail returns an error carrying the (string) argument — the
// client-reachable way to poison a consumer cone.
func opFail(arg json.RawMessage, _ []any) (any, error) {
	msg := "injected failure"
	if len(arg) > 0 {
		if err := json.Unmarshal(arg, &msg); err != nil {
			return nil, fmt.Errorf("fail: bad arg: %w", err)
		}
	}
	return nil, fmt.Errorf("fail: %s", msg)
}

// argNumber decodes an optional numeric argument, defaulting when
// absent.
func argNumber(arg json.RawMessage, def float64) (float64, error) {
	if len(arg) == 0 {
		return def, nil
	}
	var n float64
	if err := json.Unmarshal(arg, &n); err != nil {
		return 0, fmt.Errorf("numeric arg: %w", err)
	}
	return n, nil
}
