package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// postGraph submits req and decodes the full NDJSON stream.
func postGraph(t *testing.T, client *http.Client, url, tenant string, req GraphRequest) (int, []Event) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hr, err := http.NewRequest("POST", url+"/v1/graphs", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hr.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(hr)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(b, &eb)
		if eb.Error == "" {
			eb.Error = strings.TrimSpace(string(b))
		}
		return resp.StatusCode, []Event{{Type: "http-error", Err: eb.Error}}
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		evs = append(evs, e)
	}
	return resp.StatusCode, evs
}

func resultOf(evs []Event, key string) (any, bool) {
	for _, e := range evs {
		if e.Type == "result" && e.Key == key {
			return e.Value, true
		}
	}
	return nil, false
}

func hasType(evs []Event, typ string) bool {
	for _, e := range evs {
		if e.Type == typ {
			return true
		}
	}
	return false
}

// sumGraph builds a two-const + sum diamondlet whose result is a+b.
func sumGraph(a, b float64) GraphRequest {
	return GraphRequest{Tasks: []TaskWire{
		{Label: "a", Op: "const", Arg: json.RawMessage(fmt.Sprintf("%g", a)), Provide: []string{"x"}},
		{Label: "b", Op: "const", Arg: json.RawMessage(fmt.Sprintf("%g", b)), Provide: []string{"y"}},
		{Label: "add", Op: "sum", Consume: []string{"x", "y"}, Provide: []string{"total"}},
	}, Results: []string{"total"}}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opt)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown()
	})
	return s, ts
}

func TestGraphEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, evs := postGraph(t, ts.Client(), ts.URL, "t0", sumGraph(20, 22))
	if status != 200 {
		t.Fatalf("status %d: %+v", status, evs)
	}
	if v, ok := resultOf(evs, "total"); !ok || v.(float64) != 42 {
		t.Fatalf("total = %v, want 42 (events %+v)", v, evs)
	}
	// One "task" event per task, monotone seq, accepted first, done last.
	tasks := 0
	for i, e := range evs {
		if e.Seq != i+1 {
			t.Fatalf("seq %d at index %d", e.Seq, i)
		}
		if e.Type == "task" {
			tasks++
		}
	}
	if tasks != 3 {
		t.Fatalf("task events = %d, want 3", tasks)
	}
	if evs[0].Type != "accepted" || evs[len(evs)-1].Type != "done" {
		t.Fatalf("bookends wrong: %+v", evs)
	}
}

func TestRepeatRunsFrozenReplay(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := sumGraph(1, 2)
	req.Repeat = 5
	status, evs := postGraph(t, ts.Client(), ts.URL, "rep", req)
	if status != 200 {
		t.Fatalf("status %d: %+v", status, evs)
	}
	if v, _ := resultOf(evs, "total"); v.(float64) != 3 {
		t.Fatalf("total = %v, want 3", v)
	}
	last := evs[len(evs)-1]
	if last.Type != "done" || last.Iters != 5 {
		t.Fatalf("done event = %+v, want iters 5", last)
	}
	// Bodies re-ran every iteration but streamed only once per task.
	taskEvents := 0
	for _, e := range evs {
		if e.Type == "task" {
			taskEvents++
		}
	}
	if taskEvents != 3 {
		t.Fatalf("task events = %d, want 3", taskEvents)
	}
	snap := s.Manager().Snapshot()["rep"]
	if snap.Tasks != 15 {
		t.Fatalf("tenant ran %d task bodies, want 15 (3 tasks x 5 iters)", snap.Tasks)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		req  GraphRequest
		want string
	}{
		{"empty", GraphRequest{}, "empty graph"},
		{"unknown-op", GraphRequest{Tasks: []TaskWire{{Op: "nope"}}}, "unknown op"},
		{"unprovided-consume", GraphRequest{Tasks: []TaskWire{
			{Op: "sum", Consume: []string{"ghost"}, Provide: []string{"out"}},
		}}, `consumes "ghost"`},
		{"consume-before-provide", GraphRequest{Tasks: []TaskWire{
			{Op: "sum", Consume: []string{"late"}, Provide: []string{"out"}},
			{Op: "const", Arg: json.RawMessage("1"), Provide: []string{"late"}},
		}}, `consumes "late"`},
		{"bad-result", GraphRequest{Tasks: []TaskWire{
			{Op: "const", Arg: json.RawMessage("1"), Provide: []string{"x"}},
		}, Results: []string{"y"}}, `result slot "y"`},
	}
	for _, tc := range cases {
		status, evs := postGraph(t, ts.Client(), ts.URL, "v", tc.req)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
			continue
		}
		if !strings.Contains(evs[0].Err, tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, evs[0].Err, tc.want)
		}
	}
	// Bad tenant names are rejected before any runtime is built.
	status, _ := postGraph(t, ts.Client(), ts.URL, "no/slash", sumGraph(1, 1))
	if status != http.StatusBadRequest {
		t.Errorf("bad tenant name: status %d, want 400", status)
	}
}

func TestConcurrentMultiTenantSubmission(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTenants: 8, Queue: 64, GlobalInflight: 512})
	const tenants, perTenant = 6, 8
	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for ti := 0; ti < tenants; ti++ {
		for c := 0; c < perTenant; c++ {
			wg.Add(1)
			go func(ti, c int) {
				defer wg.Done()
				a, b := float64(ti), float64(c*10)
				status, evs := postGraph(t, ts.Client(), ts.URL, fmt.Sprintf("ten-%d", ti), sumGraph(a, b))
				if status != 200 {
					errs <- fmt.Errorf("tenant %d client %d: status %d", ti, c, status)
					return
				}
				if v, ok := resultOf(evs, "total"); !ok || v.(float64) != a+b {
					errs <- fmt.Errorf("tenant %d client %d: total %v, want %g", ti, c, v, a+b)
				}
			}(ti, c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPoisonedTenantDoesNotAffectOthers(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxTenants: 4, Queue: 32, GlobalInflight: 128})
	poison := GraphRequest{Tasks: []TaskWire{
		{Label: "boom", Op: "fail", Arg: json.RawMessage(`"kaput"`), Provide: []string{"p"}},
		{Label: "victim", Op: "pass", Consume: []string{"p"}, Provide: []string{"q"}},
	}}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, evs := postGraph(t, ts.Client(), ts.URL, "bad", poison)
			if status != 200 {
				errs <- fmt.Errorf("bad[%d]: status %d", i, status)
				return
			}
			if !hasType(evs, "error") {
				errs <- fmt.Errorf("bad[%d]: no error event: %+v", i, evs)
			}
			if _, ok := resultOf(evs, "q"); ok {
				errs <- fmt.Errorf("bad[%d]: poisoned task produced a result", i)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, evs := postGraph(t, ts.Client(), ts.URL, "good", sumGraph(float64(i), 1))
			if status != 200 {
				errs <- fmt.Errorf("good[%d]: status %d", i, status)
				return
			}
			if hasType(evs, "error") {
				errs <- fmt.Errorf("good[%d]: unexpected error event: %+v", i, evs)
			}
			if v, _ := resultOf(evs, "total"); v.(float64) != float64(i)+1 {
				errs <- fmt.Errorf("good[%d]: total %v", i, v)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The poisoned tenant's runtime stays reusable after its failures.
	status, evs := postGraph(t, ts.Client(), ts.URL, "bad", sumGraph(2, 3))
	if status != 200 || hasType(evs, "error") {
		t.Fatalf("bad tenant not reusable: status %d events %+v", status, evs)
	}
	snap := s.Manager().Snapshot()
	if snap["bad"].Failures == 0 {
		t.Error("bad tenant recorded no failures")
	}
	if snap["good"].Failures != 0 {
		t.Errorf("good tenant recorded %d failures", snap["good"].Failures)
	}
}

// spinChain builds n sequentially dependent spin tasks (a long-running
// graph that aborts promptly: unexecuted tasks are skipped).
func spinChain(n, iters int) GraphRequest {
	g := GraphRequest{Tasks: []TaskWire{
		{Label: "spin-0", Op: "spin", Arg: json.RawMessage(fmt.Sprint(iters)), Provide: []string{"s0"}},
	}}
	for i := 1; i < n; i++ {
		g.Tasks = append(g.Tasks, TaskWire{
			Label:   fmt.Sprintf("spin-%d", i),
			Op:      "spin",
			Arg:     json.RawMessage(fmt.Sprint(iters)),
			Consume: []string{fmt.Sprintf("s%d", i-1)},
			Provide: []string{fmt.Sprintf("s%d", i)},
		})
	}
	g.Results = []string{fmt.Sprintf("s%d", n-1)}
	return g
}

// startStreaming posts req and returns once the "accepted" event has
// been read, leaving the stream (and the admission slot) open.
func startStreaming(t *testing.T, ts *httptest.Server, tenant string, req GraphRequest) (cancel context.CancelFunc, done chan struct{}) {
	t.Helper()
	body, _ := json.Marshal(req)
	ctx, cancelFn := context.WithCancel(context.Background())
	hr, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/graphs", bytes.NewReader(body))
	hr.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(hr)
	if err != nil {
		cancelFn()
		t.Fatalf("post: %v", err)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		cancelFn()
		t.Fatalf("stream closed before accepted event")
	}
	done = make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		for sc.Scan() {
		}
	}()
	return cancelFn, done
}

func TestQuotaRejectionReturns429(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTenants: 2, Queue: 1, GlobalInflight: 64})
	cancel, done := startStreaming(t, ts, "busy", spinChain(64, 2_000_000))
	defer func() {
		cancel()
		<-done
	}()
	// The tenant's only admission slot is held by the open stream.
	status, evs := postGraph(t, ts.Client(), ts.URL, "busy", sumGraph(1, 1))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", status, evs)
	}
	if !strings.Contains(evs[0].Err, "queue") {
		t.Fatalf("429 body %q does not name the queue quota", evs[0].Err)
	}
	// Another tenant is unaffected by the busy one's quota.
	status, evs = postGraph(t, ts.Client(), ts.URL, "idle", sumGraph(2, 2))
	if status != 200 {
		t.Fatalf("idle tenant: status %d (%+v)", status, evs)
	}
}

func TestGlobalInflightCapReturns429(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxTenants: 4, Queue: 8, GlobalInflight: 1})
	cancel, done := startStreaming(t, ts, "a", spinChain(64, 2_000_000))
	defer func() {
		cancel()
		<-done
	}()
	status, evs := postGraph(t, ts.Client(), ts.URL, "b", sumGraph(1, 1))
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%+v)", status, evs)
	}
	if !strings.Contains(evs[0].Err, "global") {
		t.Fatalf("429 body %q does not name the global cap", evs[0].Err)
	}
}

func TestClientDisconnectAbortsGraph(t *testing.T) {
	s, ts := newTestServer(t, Options{Queue: 4})
	// Long chain: ~64 * several ms of spin. Disconnect right after
	// acceptance; the abort must cut execution short and release the
	// tenant promptly.
	cancel, done := startStreaming(t, ts, "d", spinChain(64, 5_000_000))
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after disconnect")
	}
	// The tenant serves the next request correctly after the abort.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, evs := postGraph(t, ts.Client(), ts.URL, "d", sumGraph(3, 4))
		if status == 200 && !hasType(evs, "error") {
			if v, _ := resultOf(evs, "total"); v.(float64) != 7 {
				t.Fatalf("total %v after disconnect", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant unusable after disconnect: status %d events %+v", status, evs)
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := s.Manager().Snapshot()["d"]
	if snap.Tasks >= 64 {
		t.Errorf("abort did not cut the chain: %d bodies ran", snap.Tasks)
	}
}

func TestTenantTeardownReleasesWorkers(t *testing.T) {
	s := New(Options{MaxTenants: 8, Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown()
	base := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		status, evs := postGraph(t, ts.Client(), ts.URL, fmt.Sprintf("gone-%d", i), sumGraph(1, float64(i)))
		if status != 200 {
			t.Fatalf("setup: status %d %+v", status, evs)
		}
	}
	for i := 0; i < 4; i++ {
		req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/tenants/gone-%d", ts.URL, i), nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatalf("delete: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete gone-%d: status %d", i, resp.StatusCode)
		}
	}
	// Deleting again is a 404.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/tenants/gone-0", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("re-delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("re-delete: status %d, want 404", resp.StatusCode)
	}
	// Worker goroutines must be gone (allow HTTP conn goroutines to
	// settle).
	ts.CloseClientConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d after teardown", n, base)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if len(s.Manager().Snapshot()) != 0 {
		t.Fatal("tenants left in pool")
	}
}

func TestPressureTightensThrottles(t *testing.T) {
	s, ts := newTestServer(t, Options{
		MaxTenants: 4, Queue: 4, GlobalInflight: 4,
		PressureAt: 0.5, TightReady: 2, TightTotal: 8,
	})
	// Warm a tenant so its throttle windows are observable.
	if status, _ := postGraph(t, ts.Client(), ts.URL, "w", sumGraph(1, 1)); status != 200 {
		t.Fatal("warmup failed")
	}
	tn, ok := s.Manager().Lookup("w")
	if !ok {
		t.Fatal("no tenant w")
	}
	if r, tot := tn.Runtime().ThrottleLimits(); r != 0 || tot != 0 {
		t.Fatalf("initial windows %d/%d, want unbounded", r, tot)
	}
	cancelA, doneA := startStreaming(t, ts, "a", spinChain(64, 2_000_000))
	cancelB, doneB := startStreaming(t, ts, "b", spinChain(64, 2_000_000))
	// Occupancy 2/4 >= 0.5: tightened windows engage on every tenant.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r, tot := tn.Runtime().ThrottleLimits(); r == 2 && tot == 8 {
			break
		}
		if time.Now().After(deadline) {
			r, tot := tn.Runtime().ThrottleLimits()
			t.Fatalf("windows %d/%d under pressure, want 2/8", r, tot)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !s.Manager().Pressured() {
		t.Fatal("manager not pressured")
	}
	cancelA()
	cancelB()
	<-doneA
	<-doneB
	// Load drained: occupancy 0 <= PressureAt/2 releases the windows.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if status, _ := postGraph(t, ts.Client(), ts.URL, "w", sumGraph(1, 1)); status != 200 {
			t.Fatal("drain probe failed")
		}
		if r, tot := tn.Runtime().ThrottleLimits(); r == 0 && tot == 0 {
			break
		}
		if time.Now().After(deadline) {
			r, tot := tn.Runtime().ThrottleLimits()
			t.Fatalf("windows %d/%d after drain, want unbounded", r, tot)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, _ := postGraph(t, ts.Client(), ts.URL, "obs", sumGraph(1, 2)); status != 200 {
		t.Fatal("setup failed")
	}
	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if status, body := get("/metrics"); status != 200 ||
		!strings.Contains(body, "tdgserve_requests_total 1") ||
		!strings.Contains(body, `tdgserve_tenant_tasks_total{tenant="obs"} 3`) {
		t.Errorf("/metrics: status %d body:\n%s", status, body)
	}
	if status, body := get("/graphz"); status != 200 || !strings.Contains(body, `"obs"`) {
		t.Errorf("/graphz: status %d body %s", status, body)
	}
	if status, body := get("/v1/tenants"); status != 200 || !strings.Contains(body, `"submissions": 1`) {
		t.Errorf("/v1/tenants: status %d body %s", status, body)
	}
	// Per-tenant endpoints delegate to the tenant runtime's registry.
	if status, body := get("/v1/tenants/obs/metrics"); status != 200 || !strings.Contains(body, "taskdep_tasks_submitted_total") {
		t.Errorf("/v1/tenants/obs/metrics: status %d body:\n%.400s", status, body)
	}
	if status, body := get("/v1/tenants/obs/graphz"); status != 200 || !strings.Contains(body, `"workers"`) {
		t.Errorf("/v1/tenants/obs/graphz: status %d body %s", status, body)
	}
	if status, _ := get("/v1/tenants/nosuch/metrics"); status != http.StatusNotFound {
		t.Errorf("missing tenant metrics: status %d, want 404", status)
	}
	if status, body := get("/healthz"); status != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", status, body)
	}
}

func TestOps(t *testing.T) {
	raw := func(s string) json.RawMessage { return json.RawMessage(s) }
	if v, err := opConst(raw(`{"a":1}`), nil); err != nil || v.(map[string]any)["a"].(float64) != 1 {
		t.Errorf("const: %v %v", v, err)
	}
	if _, err := opConst(nil, nil); err == nil {
		t.Error("const without arg should fail")
	}
	if v, _ := opSum(raw("10"), []any{1.0, 2.0}); v.(float64) != 13 {
		t.Errorf("sum: %v", v)
	}
	if _, err := opSum(nil, []any{"nope"}); err == nil {
		t.Error("sum of string should fail")
	}
	if v, _ := opMul(nil, []any{3.0, 4.0}); v.(float64) != 12 {
		t.Errorf("mul: %v", v)
	}
	if v, _ := opConcat(raw(`"-"`), []any{"a", "b"}); v.(string) != "a-b" {
		t.Errorf("concat: %v", v)
	}
	if v, _ := opPass(nil, []any{"x"}); v.(string) != "x" {
		t.Errorf("pass: %v", v)
	}
	if _, err := opPass(nil, nil); err == nil {
		t.Error("pass without input should fail")
	}
	if _, err := opSpin(raw(fmt.Sprint(spinCap+1)), nil); err == nil {
		t.Error("spin over cap should fail")
	}
	if _, err := opFail(raw(`"msg"`), nil); err == nil || !strings.Contains(err.Error(), "msg") {
		t.Errorf("fail: %v", err)
	}
}

// TestTenantCriticalPathEndpoint: with Options.CPath every tenant
// runtime carries the online critical-path profiler, and the per-tenant
// summary route serves the last window's report plus the service-level
// classification; without it the route 404s so operators can tell the
// feature is off rather than idle.
func TestTenantCriticalPathEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{CPath: true})
	if status, _ := postGraph(t, ts.Client(), ts.URL, "cpt", sumGraph(1, 2)); status != 200 {
		t.Fatal("setup graph failed")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/tenants/cpt/criticalpath")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var sum struct {
		Tenant  string `json:"tenant"`
		Enabled bool   `json:"enabled"`
		Report  *struct {
			Tasks int64 `json:"tasks"`
			CPLen int   `json:"cp_len"`
		} `json:"report"`
		Bound             string `json:"bound"`
		DiscoveryImpacted bool   `json:"discovery_impacted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sum.Tenant != "cpt" || !sum.Enabled {
		t.Fatalf("summary: %+v", sum)
	}
	// Tenants run the production cached clock: sub-tick tasks quantize
	// to zero weight, so only the path's length floor is deterministic.
	if sum.Report == nil || sum.Report.Tasks != 3 || sum.Report.CPLen < 1 {
		t.Fatalf("report: %+v", sum.Report)
	}
	switch sum.Bound {
	case "discovery", "ready-wait", "execute":
	default:
		t.Fatalf("bound classification %q", sum.Bound)
	}

	// Profiling off: the route must 404 for an existing tenant.
	_, tsOff := newTestServer(t, Options{})
	if status, _ := postGraph(t, tsOff.Client(), tsOff.URL, "plain", sumGraph(1, 2)); status != 200 {
		t.Fatal("setup graph failed")
	}
	for _, path := range []string{"/v1/tenants/plain/criticalpath", "/v1/tenants/nosuch/criticalpath"} {
		r2, err := tsOff.Client().Get(tsOff.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: status %d, want 404", path, r2.StatusCode)
		}
	}
}
