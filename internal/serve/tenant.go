package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"taskdep/internal/rt"
	"taskdep/internal/values"
)

// ErrTenantClosed is returned to requests that race a tenant teardown.
var ErrTenantClosed = errors.New("serve: tenant closed")

// ErrPoolFull is returned when creating a tenant would exceed
// Options.MaxTenants.
var ErrPoolFull = errors.New("serve: tenant pool full")

// ErrQuota is returned when admission control rejects a request (the
// per-tenant queue or the global in-flight cap is exhausted). The HTTP
// layer maps it to 429.
var ErrQuota = errors.New("serve: over quota")

// Options configures the service: pool geometry, per-tenant runtime
// shape and admission control. The zero value gets sane defaults from
// withDefaults.
type Options struct {
	// MaxTenants bounds the runtime pool. Default 16.
	MaxTenants int
	// Workers is the per-tenant runtime worker count. Default 1.
	Workers int
	// Queue is the per-tenant admission quota: requests running or
	// waiting on the tenant's producer lock. Default 64.
	Queue int
	// GlobalInflight caps requests admitted across all tenants.
	// Default 1024.
	GlobalInflight int
	// ThrottleReady/ThrottleTotal are each tenant runtime's normal
	// throttle windows (0 = unbounded).
	ThrottleReady, ThrottleTotal int64
	// TightReady/TightTotal are the windows applied to every tenant
	// while global occupancy is above PressureAt — backpressure by
	// shrinking discovery frontiers instead of rejecting. Defaults
	// 64/256.
	TightReady, TightTotal int64
	// PressureAt is the global-occupancy fraction that engages the
	// tightened windows; they release at half this mark. Default 0.75.
	PressureAt float64
	// CPath enables the online critical-path profiler on every tenant
	// runtime: per-graph phase attribution and discovery-impact what-if
	// reports, served per tenant at GET /v1/tenants/{name}/criticalpath.
	// Default off (the profiler costs a few ns per task).
	CPath bool
}

func (o Options) withDefaults() Options {
	if o.MaxTenants <= 0 {
		o.MaxTenants = 16
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Queue <= 0 {
		o.Queue = 64
	}
	if o.GlobalInflight <= 0 {
		o.GlobalInflight = 1024
	}
	if o.TightReady <= 0 {
		o.TightReady = 64
	}
	if o.TightTotal <= 0 {
		o.TightTotal = 256
	}
	if o.PressureAt <= 0 || o.PressureAt > 1 {
		o.PressureAt = 0.75
	}
	return o
}

// Tenant owns one isolated runtime: private workers, graph, metrics
// registry and failure domain. Requests serialize on prodMu (the
// runtime's single-producer contract); everything else about the
// tenant is safe for concurrent use.
type Tenant struct {
	name  string
	rt    *rt.Runtime
	store *values.Store

	prodMu sync.Mutex
	sem    chan struct{} // admission quota (see Options.Queue)
	closed atomic.Bool

	submissions atomic.Int64 // graphs accepted
	tasksRun    atomic.Int64 // task bodies executed
	failures    atomic.Int64 // graphs that drained with an error
	rejected    atomic.Int64 // admissions refused (quota)
	inflight    atomic.Int64 // admitted, not yet finished
}

// Name returns the tenant's identifier.
func (t *Tenant) Name() string { return t.name }

// Runtime exposes the tenant's runtime (introspection endpoints).
func (t *Tenant) Runtime() *rt.Runtime { return t.rt }

// tryAcquire claims one admission slot, failing fast when the
// tenant's queue quota is exhausted.
func (t *Tenant) tryAcquire() bool {
	select {
	case t.sem <- struct{}{}:
		t.inflight.Add(1)
		return true
	default:
		t.rejected.Add(1)
		return false
	}
}

func (t *Tenant) release() {
	t.inflight.Add(-1)
	<-t.sem
}

// Run executes one validated graph on the tenant's runtime, emitting
// stream events as tasks complete. emit may be called from worker
// goroutines and must not block (the HTTP layer passes a
// sufficiently-buffered channel send). The caller must have acquired
// an admission slot.
func (t *Tenant) Run(ctx context.Context, req *GraphRequest, emit func(Event)) error {
	if t.closed.Load() {
		return ErrTenantClosed
	}
	t.prodMu.Lock()
	defer t.prodMu.Unlock()
	if t.closed.Load() {
		return ErrTenantClosed
	}
	// A previous request's disconnect watcher may have aborted the
	// runtime just as its window drained; consume the stale flag so
	// this request starts clean.
	if t.rt.Aborted() {
		_ = t.rt.Taskwait()
	}
	t.store.Reset()
	t.submissions.Add(1)

	specs, resultHandles, resultNames := t.build(req, emit)

	// Abort the window when the client goes away mid-stream, so a
	// disconnected request never pins the tenant for its full graph.
	var done atomic.Bool
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			if !done.Load() {
				t.rt.Abort(fmt.Errorf("serve: client disconnected: %w", context.Cause(ctx)))
			}
		case <-stop:
		}
	}()

	iters := req.Repeat
	if iters < 1 {
		iters = 1
	}
	var err error
	if iters == 1 {
		for i := range specs {
			t.rt.Submit(specs[i])
		}
		err = t.rt.Taskwait()
	} else {
		// The persistent frozen-replay path: the graph is recorded
		// once and replayed as a compiled flat schedule — the typed
		// dataflow facade lowers onto plain key dependences, so the
		// paper's optimization (p) applies to served graphs unchanged.
		err = t.rt.PersistentFrozen(iters, func() {
			for i := range specs {
				t.rt.Submit(specs[i])
			}
		})
	}
	done.Store(true)
	close(stop)
	if err != nil {
		t.failures.Add(1)
		return err
	}
	for i, h := range resultHandles {
		emit(Event{Type: "result", Key: resultNames[i], Value: h.Any()})
	}
	return nil
}

// build lowers the wire tasks onto runtime specs via the typed value
// layer. Caller holds prodMu.
func (t *Tenant) build(req *GraphRequest, emit func(Event)) (specs []rt.Spec, resultHandles []values.Handle, resultNames []string) {
	handles := make(map[string]values.Handle, 8)
	bind := func(names []string) []values.Handle {
		if len(names) == 0 {
			return nil
		}
		hs := make([]values.Handle, len(names))
		for i, n := range names {
			h, ok := handles[n]
			if !ok {
				h = t.store.Bind(n)
				handles[n] = h
			}
			hs[i] = h
		}
		return hs
	}
	specs = make([]rt.Spec, 0, len(req.Tasks))
	var provided []string
	for i := range req.Tasks {
		w := &req.Tasks[i]
		op := Ops[w.Op]
		label := w.Name(i)
		arg := w.Arg
		consume := bind(w.Consume)
		update := bind(w.Update)
		for _, n := range w.Provide {
			if _, ok := handles[n]; !ok {
				provided = append(provided, n)
			}
		}
		provide := bind(w.Provide)
		runs := new(atomic.Int32)
		do := func() error {
			in := make([]any, 0, len(consume)+len(update))
			for _, h := range consume {
				in = append(in, h.Any())
			}
			for _, h := range update {
				in = append(in, h.Any())
			}
			v, err := op(arg, in)
			if err != nil {
				return err
			}
			for _, h := range provide {
				h.SetAny(v)
			}
			for _, h := range update {
				h.SetAny(v)
			}
			t.tasksRun.Add(1)
			// One transition event per task: the first completed
			// execution (frozen replays re-run bodies every
			// iteration; streaming each would swamp the client).
			if runs.Add(1) == 1 {
				emit(Event{Type: "task", Task: label, State: "done"})
			}
			return nil
		}
		specs = append(specs, values.Lower(values.Spec{
			Label:   label,
			Consume: consume,
			Provide: provide,
			Update:  update,
			Do:      do,
		}))
	}
	names := req.Results
	if len(names) == 0 {
		names = provided
	}
	resultHandles = make([]values.Handle, len(names))
	for i, n := range names {
		resultHandles[i] = handles[n]
	}
	return specs, resultHandles, names
}

// shutdown closes the tenant: aborts any running window, waits for
// the active request to drain off the producer lock, then joins the
// runtime's workers. Idempotent.
func (t *Tenant) shutdown() {
	if t.closed.Swap(true) {
		return
	}
	t.rt.Abort(ErrTenantClosed)
	t.prodMu.Lock()
	defer t.prodMu.Unlock()
	_ = t.rt.Close()
}

// Manager is the bounded tenant pool plus global admission state.
type Manager struct {
	opt Options

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool

	inflight       atomic.Int64
	pressured      atomic.Bool
	rejectedGlobal atomic.Int64
}

// NewManager builds a pool with the given options (zero value OK).
func NewManager(opt Options) *Manager {
	return &Manager{opt: opt.withDefaults(), tenants: make(map[string]*Tenant)}
}

// Options returns the effective (defaulted) options.
func (m *Manager) Options() Options { return m.opt }

// validTenantName accepts DNS-label-ish names: letters, digits, and
// [._-], nonempty, bounded.
func validTenantName(s string) bool {
	if s == "" || len(s) > MaxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9', c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Tenant returns the named tenant, creating it on first use. Creation
// fails with ErrPoolFull when the pool is at MaxTenants.
func (m *Manager) Tenant(name string) (*Tenant, error) {
	if !validTenantName(name) {
		return nil, fmt.Errorf("serve: invalid tenant name %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrTenantClosed
	}
	if t, ok := m.tenants[name]; ok {
		return t, nil
	}
	if len(m.tenants) >= m.opt.MaxTenants {
		return nil, ErrPoolFull
	}
	ready, total := m.opt.ThrottleReady, m.opt.ThrottleTotal
	if m.pressured.Load() {
		ready, total = m.opt.TightReady, m.opt.TightTotal
	}
	runtime, err := rt.NewRuntime(rt.Config{
		Workers:  m.opt.Workers,
		Throttle: rt.ThrottleOptions{Ready: ready, Total: total},
		CPath:    rt.CPathOptions{Enable: m.opt.CPath},
	})
	if err != nil {
		return nil, err
	}
	t := &Tenant{
		name:  name,
		rt:    runtime,
		store: values.NewStore(),
		sem:   make(chan struct{}, m.opt.Queue),
	}
	m.tenants[name] = t
	return t, nil
}

// Lookup returns the named tenant without creating it.
func (m *Manager) Lookup(name string) (*Tenant, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.tenants[name]
	return t, ok
}

// Admit performs both admission checks for one request on t. On
// success the caller must call the returned release exactly once.
func (m *Manager) Admit(t *Tenant) (release func(), err error) {
	if !t.tryAcquire() {
		return nil, fmt.Errorf("%w: tenant %s queue (%d) full", ErrQuota, t.name, m.opt.Queue)
	}
	n := m.inflight.Add(1)
	if n > int64(m.opt.GlobalInflight) {
		m.inflight.Add(-1)
		t.release()
		m.rejectedGlobal.Add(1)
		return nil, fmt.Errorf("%w: global in-flight cap (%d) reached", ErrQuota, m.opt.GlobalInflight)
	}
	m.adjustPressure(n)
	return func() {
		left := m.inflight.Add(-1)
		t.release()
		m.adjustPressure(left)
	}, nil
}

// adjustPressure engages the tightened throttle windows on every
// tenant when occupancy crosses PressureAt, and releases them (with
// hysteresis, at half the mark) when load drains. SetThrottle is the
// same actuator the self-tuner drives: a pair of atomic stores plus a
// producer wake, cheap enough to call on crossings.
func (m *Manager) adjustPressure(inflight int64) {
	occ := float64(inflight) / float64(m.opt.GlobalInflight)
	switch {
	case occ >= m.opt.PressureAt:
		if !m.pressured.Swap(true) {
			m.setAllThrottles(m.opt.TightReady, m.opt.TightTotal)
		}
	case occ <= m.opt.PressureAt/2:
		if m.pressured.Swap(false) {
			m.setAllThrottles(m.opt.ThrottleReady, m.opt.ThrottleTotal)
		}
	}
}

func (m *Manager) setAllThrottles(ready, total int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range m.tenants {
		t.rt.SetThrottle(ready, total)
	}
}

// Pressured reports whether the tightened windows are engaged.
func (m *Manager) Pressured() bool { return m.pressured.Load() }

// Inflight returns the globally admitted request count.
func (m *Manager) Inflight() int64 { return m.inflight.Load() }

// Close removes the named tenant from the pool and shuts its runtime
// down, waiting for the active request (if any) to drain. Reports
// whether the tenant existed.
func (m *Manager) Close(name string) bool {
	m.mu.Lock()
	t, ok := m.tenants[name]
	delete(m.tenants, name)
	m.mu.Unlock()
	if !ok {
		return false
	}
	t.shutdown()
	return true
}

// CloseAll tears down every tenant and marks the pool closed.
func (m *Manager) CloseAll() {
	m.mu.Lock()
	m.closed = true
	ts := make([]*Tenant, 0, len(m.tenants))
	for _, t := range m.tenants {
		ts = append(ts, t)
	}
	m.tenants = make(map[string]*Tenant)
	m.mu.Unlock()
	for _, t := range ts {
		t.shutdown()
	}
}

// TenantSnap is one tenant's stats row in the service snapshot.
type TenantSnap struct {
	Submissions int64       `json:"submissions"`
	Tasks       int64       `json:"tasks"`
	Failures    int64       `json:"failures"`
	Rejected    int64       `json:"rejected"`
	Inflight    int64       `json:"inflight"`
	Runtime     rt.Snapshot `json:"runtime"`
}

// Snapshot captures per-tenant stats plus runtime introspection, for
// /graphz and /metrics.
func (m *Manager) Snapshot() map[string]TenantSnap {
	m.mu.Lock()
	ts := make(map[string]*Tenant, len(m.tenants))
	for n, t := range m.tenants {
		ts[n] = t
	}
	m.mu.Unlock()
	out := make(map[string]TenantSnap, len(ts))
	for n, t := range ts {
		out[n] = TenantSnap{
			Submissions: t.submissions.Load(),
			Tasks:       t.tasksRun.Load(),
			Failures:    t.failures.Load(),
			Rejected:    t.rejected.Load(),
			Inflight:    t.inflight.Load(),
			Runtime:     t.rt.Introspect(),
		}
	}
	return out
}
