package verify

import (
	"fmt"
	"io"
	"strings"
	"time"

	"taskdep/internal/graph"
)

// Race is a missing-ordering witness: two tasks access Key with at
// least one writer and no happens-before path connects them — an
// under-declared dependence, i.e. a data race the scheduler is free to
// expose on any run.
type Race struct {
	A, B     *graph.Task
	Key      graph.Key
	ATy, BTy graph.DepType
}

func (r Race) String() string {
	return fmt.Sprintf("missing ordering on key %d: task %d (%q, %s) unordered with task %d (%q, %s)",
		r.Key, r.A.ID, r.A.Label, r.ATy, r.B.ID, r.B.Label, r.BTy)
}

// Cycle is a dependency loop; executing it deadlocks.
type Cycle struct {
	// Path lists the tasks around the loop (last node has an edge back
	// to the first).
	Path []*graph.Task
}

func (c Cycle) String() string {
	var b strings.Builder
	b.WriteString("dependency cycle: ")
	for i, t := range c.Path {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%d (%q)", t.ID, t.Label)
	}
	if len(c.Path) > 0 {
		fmt.Fprintf(&b, " -> %d", c.Path[0].ID)
	}
	return b.String()
}

// DuplicateEdge is a (pred, succ) pair recorded more than once while
// optimization (b) claimed to eliminate duplicates.
type DuplicateEdge struct {
	Pred, Succ *graph.Task
	Count      int
}

func (d DuplicateEdge) String() string {
	return fmt.Sprintf("duplicate edge survived OptDedup: %d (%q) -> %d (%q) recorded %d times",
		d.Pred.ID, d.Pred.Label, d.Succ.ID, d.Succ.Label, d.Count)
}

// Divergence is a persistent-replay submission that does not match the
// recorded structure — the task stream changed shape while the replay
// machinery (trusting a `changed` callback that lied, or a Persistent
// body with hidden iteration dependence) kept executing the stale
// recording.
type Divergence struct {
	// Iter is the persistent iteration the mismatch was observed in.
	Iter int
	// Index is the replay submission index within the iteration, or -1
	// for iteration-level findings (count or signature mismatch).
	Index  int
	Detail string
}

func (d Divergence) String() string {
	if d.Index < 0 {
		return fmt.Sprintf("replay divergence (iteration %d): %s", d.Iter, d.Detail)
	}
	return fmt.Sprintf("replay divergence (iteration %d, task %d): %s", d.Iter, d.Index, d.Detail)
}

// Report is the result of one verifier audit plus any replay
// divergences accumulated by the Recorder.
type Report struct {
	// Opts is the discovery optimization mask the graph ran with.
	Opts graph.Opt
	// Tasks and Edges size the audited graph (redirect nodes included).
	Tasks, Edges int
	// Nodes is the audited node set (submission order first, then
	// successor-reachable extras); WriteDOT renders it.
	Nodes []*graph.Task
	// Elapsed is the audit wall-clock — the verification overhead a
	// tdgbench -verify run reports.
	Elapsed time.Duration

	Races             []Race
	Cycles            []Cycle
	DanglingRedirects []*graph.Task
	// DuplicateEdges is populated only when OptDedup was enabled (a
	// duplicate is a violation only if (b) claimed to remove it);
	// DuplicateEdgeCount counts extra edge copies regardless.
	DuplicateEdges     []DuplicateEdge
	DuplicateEdgeCount int
	Divergences        []Divergence

	// RacesSkipped reports that the missing-ordering pass did not run
	// because the graph is cyclic.
	RacesSkipped bool
	// Truncated reports that the race pass hit its pair/step budget;
	// absence of findings past that point is not a clean bill.
	Truncated bool
}

// OK reports whether the audit found nothing wrong.
func (r *Report) OK() bool {
	return len(r.Races) == 0 && len(r.Cycles) == 0 && len(r.DanglingRedirects) == 0 &&
		len(r.DuplicateEdges) == 0 && len(r.Divergences) == 0
}

// NumFindings counts individual findings.
func (r *Report) NumFindings() int {
	return len(r.Races) + len(r.Cycles) + len(r.DanglingRedirects) +
		len(r.DuplicateEdges) + len(r.Divergences)
}

// Summary is the one-line form.
func (r *Report) Summary() string {
	if r.OK() {
		extra := ""
		if r.RacesSkipped {
			extra = ", race check skipped"
		} else if r.Truncated {
			extra = ", truncated"
		}
		return fmt.Sprintf("verify: OK (%d tasks, %d edges, %v%s)", r.Tasks, r.Edges, r.Elapsed.Round(time.Microsecond), extra)
	}
	return fmt.Sprintf("verify: %d finding(s) in %d tasks / %d edges: %d race(s), %d cycle(s), %d dangling redirect(s), %d duplicate edge(s), %d divergence(s)",
		r.NumFindings(), r.Tasks, r.Edges,
		len(r.Races), len(r.Cycles), len(r.DanglingRedirects), len(r.DuplicateEdges), len(r.Divergences))
}

// String lists every finding, one per line, after the summary.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	for _, x := range r.Races {
		b.WriteString("\n  ")
		b.WriteString(x.String())
	}
	for _, x := range r.Cycles {
		b.WriteString("\n  ")
		b.WriteString(x.String())
	}
	for _, t := range r.DanglingRedirects {
		fmt.Fprintf(&b, "\n  dangling redirect node %d: no inoutset member feeds it", t.ID)
	}
	for _, x := range r.DuplicateEdges {
		b.WriteString("\n  ")
		b.WriteString(x.String())
	}
	for _, x := range r.Divergences {
		b.WriteString("\n  ")
		b.WriteString(x.String())
	}
	if r.RacesSkipped {
		b.WriteString("\n  (missing-ordering check skipped: graph is cyclic)")
	}
	if r.Truncated {
		b.WriteString("\n  (race check truncated by budget; findings may be incomplete)")
	}
	return b.String()
}

// WriteDOT exports the audited graph with race witnesses highlighted as
// dashed red edges (and cycle edges in orange), via internal/graph's
// DOT writer.
func (r *Report) WriteDOT(w io.Writer, name string) error {
	var hl []graph.EdgeHighlight
	for _, race := range r.Races {
		hl = append(hl, graph.EdgeHighlight{
			From: race.A, To: race.B, Color: "red",
			Label: fmt.Sprintf("race key %d", race.Key),
		})
	}
	for _, c := range r.Cycles {
		for i := range c.Path {
			next := c.Path[(i+1)%len(c.Path)]
			hl = append(hl, graph.EdgeHighlight{From: c.Path[i], To: next, Color: "orange", Label: "cycle"})
		}
	}
	return graph.WriteDOTHighlighted(w, r.Nodes, name, hl)
}
