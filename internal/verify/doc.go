// Package verify is the TDG verifier: a static-analysis layer that
// audits a discovered task dependency graph for the failure modes the
// runtime itself cannot see. The paper's premise is that the runtime
// trusts user-declared in/out/inout/inoutset sets — an under-declared
// dependence is a silent data race no discovery optimization can fix,
// and a cycle or a diverging persistent sub-graph (PTSG) deadlocks or
// replays stale structure. The verifier checks:
//
//   - missing orderings: every pair of tasks with conflicting accesses
//     on the same key (at least one writer) must be connected by a
//     happens-before path over recorded precedence edges, including
//     paths through optimization-(c) redirect nodes;
//   - cycles: reported before execution hangs on them;
//   - dangling redirect nodes: optimization-(c) nodes with no group
//     members feeding them;
//   - duplicate edges that survived optimization (b);
//   - PTSG replay divergence: a structural signature (task count, dep
//     lists, edge multiset) compared across Persistent /
//     PersistentAdaptive iterations, catching `changed` callbacks that
//     lie (see Recorder).
//
// The real executor hooks it in through rt.Config.Verify; the audit can
// also run standalone over any task set (tests, offline dumps).
//
// # Layout
//
// verify.go implements the structural audit (Audit) with its
// reachability engine and cost bounds; recorder.go is the runtime-side
// Recorder that logs submissions — striped by task ID so the graph's
// sharded discovery path is observed without re-serializing it — and
// checks persistent replays; report.go defines Report, Race and
// Divergence plus the DOT race-witness export.
package verify
