package verify

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"taskdep/internal/graph"
)

// Recorder captures what the graph layer discards: the dependence
// declaration of every submitted task, and — inside persistent regions
// — the recorded structure each replay iteration must reproduce. The
// runtime owns one when Config.Verify != Off and forwards discovery and
// persistence events to it; Audit then checks the whole history.
//
// The discovery-side methods (Record, ReplayNext, Begin*/End*) follow
// the graph's single-producer contract; Audit may run from any
// goroutine (it locks out the producer while snapshotting).
type Recorder struct {
	mu   sync.Mutex
	opts graph.Opt

	infos []TaskInfo

	// recording state: the structural reference a replay is checked
	// against.
	recording bool
	entries   []recEntry // non-redirect tasks of the recording, in order
	recTasks  []*graph.Task
	recSig    uint64

	// replay state
	replayIter  int
	replayIdx   int
	replayCheck bool // per-submission checks (false for frozen replays)
	divMark     int

	divergences []Divergence
}

type recEntry struct {
	label string
	deps  []graph.Dep // canonical order (sorted by key, then type)
}

// NewRecorder creates a recorder for a graph discovered with opts.
func NewRecorder(opts graph.Opt) *Recorder {
	return &Recorder{opts: opts}
}

// canonDeps copies deps into the canonical comparison order.
func canonDeps(deps []graph.Dep) []graph.Dep {
	c := append([]graph.Dep(nil), deps...)
	sort.Slice(c, func(i, j int) bool {
		if c[i].Key != c[j].Key {
			return c[i].Key < c[j].Key
		}
		return c[i].Type < c[j].Type
	})
	return c
}

func depsString(deps []graph.Dep) string {
	s := "["
	for i, d := range deps {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", d.Type, d.Key)
	}
	return s + "]"
}

// Record captures one discovered task and its declared dependences.
// Producer-only.
func (r *Recorder) Record(t *graph.Task, deps []graph.Dep) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos = append(r.infos, TaskInfo{Task: t, Deps: append([]graph.Dep(nil), deps...)})
	if r.recording {
		r.entries = append(r.entries, recEntry{label: t.Label, deps: canonDeps(deps)})
	}
}

// BeginRecording mirrors graph.BeginRecording: subsequent Records
// define the structural reference for later replays.
func (r *Recorder) BeginRecording() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recording = true
	r.entries = r.entries[:0]
}

// EndRecording closes the reference; recorded is the graph's recorded
// sequence (redirect nodes included) whose structural signature later
// iterations are compared against.
func (r *Recorder) EndRecording(recorded []*graph.Task) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recording = false
	r.recTasks = append(r.recTasks[:0], recorded...)
	r.recSig = Signature(recorded)
}

// BeginReplay starts checking one replay iteration. perTask enables the
// per-submission label/dependence comparison (Persistent and
// PersistentAdaptive); frozen replays (PersistentFrozen) re-release the
// captured closures without resubmitting, so only the end-of-iteration
// signature check applies.
func (r *Recorder) BeginReplay(iter int, perTask bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replayIter = iter
	r.replayIdx = 0
	r.replayCheck = perTask
	r.divMark = len(r.divergences)
}

// ReplayNext checks one replay submission against the recorded entry at
// the same position. Producer-only.
func (r *Recorder) ReplayNext(label string, deps []graph.Dep) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.replayCheck {
		return
	}
	i := r.replayIdx
	r.replayIdx++
	if i >= len(r.entries) {
		if i == len(r.entries) {
			r.divergences = append(r.divergences, Divergence{
				Iter: r.replayIter, Index: i,
				Detail: fmt.Sprintf("replay submitted more tasks than the %d recorded", len(r.entries)),
			})
		}
		return
	}
	e := r.entries[i]
	if label != e.label {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: i,
			Detail: fmt.Sprintf("label %q, recorded %q", label, e.label),
		})
		return
	}
	got := canonDeps(deps)
	if !depsEqual(got, e.deps) {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: i,
			Detail: fmt.Sprintf("task %q declared %s, recorded %s — the replay executes the recorded ordering, not the declared one",
				label, depsString(got), depsString(e.deps)),
		})
	}
}

func depsEqual(a, b []graph.Dep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EndReplay closes one replay iteration: checks the submission count
// and the recorded structure's signature, and returns the divergences
// found during this iteration.
func (r *Recorder) EndReplay(recorded []*graph.Task) []Divergence {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replayCheck && r.replayIdx < len(r.entries) {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: -1,
			Detail: fmt.Sprintf("replay submitted %d of %d recorded tasks", r.replayIdx, len(r.entries)),
		})
	}
	if sig := Signature(recorded); sig != r.recSig {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: -1,
			Detail: fmt.Sprintf("recorded structure mutated between iterations (signature %#x, recorded %#x)", sig, r.recSig),
		})
	}
	r.replayCheck = false
	return append([]Divergence(nil), r.divergences[r.divMark:]...)
}

// Divergences returns all divergences accumulated so far.
func (r *Recorder) Divergences() []Divergence {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Divergence(nil), r.divergences...)
}

// Audit snapshots the recorded history and runs the full structural
// check; extra nodes (redirects the graph logged) join the node set.
func (r *Recorder) Audit(extra []*graph.Task) *Report {
	r.mu.Lock()
	infos := append([]TaskInfo(nil), r.infos...)
	divs := append([]Divergence(nil), r.divergences...)
	opts := r.opts
	r.mu.Unlock()

	rep := Audit(infos, opts, extra)
	rep.Divergences = append(rep.Divergences, divs...)
	return rep
}

// Signature hashes the structure of a task sequence: task count,
// per-task identity (position, label, kind, recorded indegree) and the
// edge multiset restricted to the set — the PTSG signature replays are
// compared against. Dependence declarations are checked separately,
// per submission, by ReplayNext.
func Signature(tasks []*graph.Task) uint64 {
	h := fnv.New64a()
	idx := make(map[*graph.Task]int, len(tasks))
	for i, t := range tasks {
		idx[t] = i
	}
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(tasks)))
	for i, t := range tasks {
		put(uint64(i))
		h.Write([]byte(t.Label))
		flags := uint64(0)
		if t.Redirect {
			flags |= 1
		}
		if t.Detached {
			flags |= 2
		}
		put(flags)
		put(uint64(t.Indegree()))
		for _, s := range t.Successors() {
			if j, ok := idx[s]; ok {
				put(uint64(j))
			}
		}
	}
	return h.Sum64()
}
