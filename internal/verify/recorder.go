package verify

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"taskdep/internal/graph"
)

// Recorder captures what the graph layer discards: the dependence
// declaration of every submitted task, and — inside persistent regions
// — the recorded structure each replay iteration must reproduce. The
// runtime owns one when Config.Verify != Off and forwards discovery and
// persistence events to it; Audit then checks the whole history.
//
// Record observes the graph's striped submission path without
// re-serializing it: the submission log is itself striped by task ID
// (recStripes buckets, each with its own lock), so concurrent producers
// that do not collide on a bucket record in parallel. Audit merges the
// stripes back into submission order by task ID — exact for a single
// producer (IDs are dense in submission order, batched or not), and for
// concurrent producers a valid linearization whenever producers work on
// disjoint keys (each key's access sequence comes from one producer,
// whose IDs are monotonic). The persistence-side methods (ReplayNext,
// Begin*/End*) follow the graph's single-producer persistence contract;
// Audit may run from any goroutine (it locks out producers while
// snapshotting).
type Recorder struct {
	mu   sync.Mutex
	opts graph.Opt

	// stripes hold the submission log, sharded by task ID.
	stripes [recStripes]recStripe
	// recording is set between BeginRecording and EndRecording so the
	// striped Record path knows to also append to entries (atomically
	// readable without taking mu).
	recordingFlag atomic.Bool

	// recording state under mu: the structural reference a replay is
	// checked against.
	entries  []recEntry // non-redirect tasks of the recording, in order
	recTasks []*graph.Task
	recSig   uint64

	// replay state
	replayIter  int
	replayIdx   int
	replayCheck bool // per-submission checks (false for frozen replays)
	divMark     int

	divergences []Divergence
}

// recStripes is the stripe count of the submission log; power of two.
const recStripes = 16

type recStripe struct {
	mu    sync.Mutex
	infos []TaskInfo
	_     [32]byte // pad to limit false sharing between stripes
}

type recEntry struct {
	label string
	deps  []graph.Dep // canonical order (sorted by key, then type)
}

// NewRecorder creates a recorder for a graph discovered with opts.
func NewRecorder(opts graph.Opt) *Recorder {
	return &Recorder{opts: opts}
}

// canonDeps copies deps into the canonical comparison order.
func canonDeps(deps []graph.Dep) []graph.Dep {
	c := append([]graph.Dep(nil), deps...)
	sort.Slice(c, func(i, j int) bool {
		if c[i].Key != c[j].Key {
			return c[i].Key < c[j].Key
		}
		return c[i].Type < c[j].Type
	})
	return c
}

func depsString(deps []graph.Dep) string {
	s := "["
	for i, d := range deps {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", d.Type, d.Key)
	}
	return s + "]"
}

// Record captures one discovered task and its declared dependences
// (deps is copied; callers may reuse the buffer). Safe for concurrent
// producers: the log append lands in the task's ID stripe.
func (r *Recorder) Record(t *graph.Task, deps []graph.Dep) {
	s := &r.stripes[uint64(t.ID)&(recStripes-1)]
	s.mu.Lock()
	s.infos = append(s.infos, TaskInfo{Task: t, Deps: append([]graph.Dep(nil), deps...)})
	s.mu.Unlock()
	if r.recordingFlag.Load() {
		// Persistence recording is single-producer (graph contract), so
		// this append does not contend with other Records.
		r.mu.Lock()
		r.entries = append(r.entries, recEntry{label: t.Label, deps: canonDeps(deps)})
		r.mu.Unlock()
	}
}

// snapshotInfos merges the striped submission log back into submission
// order (by task ID).
func (r *Recorder) snapshotInfos() []TaskInfo {
	var infos []TaskInfo
	for i := range r.stripes {
		s := &r.stripes[i]
		s.mu.Lock()
		infos = append(infos, s.infos...)
		s.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Task.ID < infos[j].Task.ID })
	return infos
}

// BeginRecording mirrors graph.BeginRecording: subsequent Records
// define the structural reference for later replays.
func (r *Recorder) BeginRecording() {
	r.mu.Lock()
	r.entries = r.entries[:0]
	r.mu.Unlock()
	r.recordingFlag.Store(true)
}

// EndRecording closes the reference; recorded is the graph's recorded
// sequence (redirect nodes included) whose structural signature later
// iterations are compared against.
func (r *Recorder) EndRecording(recorded []*graph.Task) {
	r.recordingFlag.Store(false)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recTasks = append(r.recTasks[:0], recorded...)
	r.recSig = Signature(recorded)
}

// BeginReplay starts checking one replay iteration. perTask enables the
// per-submission label/dependence comparison (Persistent and
// PersistentAdaptive); frozen replays (PersistentFrozen) re-release the
// captured closures without resubmitting, so only the end-of-iteration
// signature check applies.
func (r *Recorder) BeginReplay(iter int, perTask bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replayIter = iter
	r.replayIdx = 0
	r.replayCheck = perTask
	r.divMark = len(r.divergences)
}

// ReplayNext checks one replay submission against the recorded entry at
// the same position. Producer-only.
func (r *Recorder) ReplayNext(label string, deps []graph.Dep) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.replayCheck {
		return
	}
	i := r.replayIdx
	r.replayIdx++
	if i >= len(r.entries) {
		if i == len(r.entries) {
			r.divergences = append(r.divergences, Divergence{
				Iter: r.replayIter, Index: i,
				Detail: fmt.Sprintf("replay submitted more tasks than the %d recorded", len(r.entries)),
			})
		}
		return
	}
	e := r.entries[i]
	if label != e.label {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: i,
			Detail: fmt.Sprintf("label %q, recorded %q", label, e.label),
		})
		return
	}
	got := canonDeps(deps)
	if !depsEqual(got, e.deps) {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: i,
			Detail: fmt.Sprintf("task %q declared %s, recorded %s — the replay executes the recorded ordering, not the declared one",
				label, depsString(got), depsString(e.deps)),
		})
	}
}

func depsEqual(a, b []graph.Dep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// EndReplay closes one replay iteration: checks the submission count
// and the recorded structure's signature, and returns the divergences
// found during this iteration.
func (r *Recorder) EndReplay(recorded []*graph.Task) []Divergence {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.replayCheck && r.replayIdx < len(r.entries) {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: -1,
			Detail: fmt.Sprintf("replay submitted %d of %d recorded tasks", r.replayIdx, len(r.entries)),
		})
	}
	if sig := Signature(recorded); sig != r.recSig {
		r.divergences = append(r.divergences, Divergence{
			Iter: r.replayIter, Index: -1,
			Detail: fmt.Sprintf("recorded structure mutated between iterations (signature %#x, recorded %#x)", sig, r.recSig),
		})
	}
	r.replayCheck = false
	return append([]Divergence(nil), r.divergences[r.divMark:]...)
}

// Divergences returns all divergences accumulated so far.
func (r *Recorder) Divergences() []Divergence {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Divergence(nil), r.divergences...)
}

// Audit snapshots the recorded history and runs the full structural
// check; extra nodes (redirects the graph logged) join the node set.
func (r *Recorder) Audit(extra []*graph.Task) *Report {
	infos := r.snapshotInfos()
	r.mu.Lock()
	divs := append([]Divergence(nil), r.divergences...)
	opts := r.opts
	r.mu.Unlock()

	rep := Audit(infos, opts, extra)
	rep.Divergences = append(rep.Divergences, divs...)
	return rep
}

// Signature hashes the structure of a task sequence: task count,
// per-task identity (position, label, kind, recorded indegree) and the
// edge multiset restricted to the set — the PTSG signature replays are
// compared against. Dependence declarations are checked separately,
// per submission, by ReplayNext.
func Signature(tasks []*graph.Task) uint64 {
	h := fnv.New64a()
	idx := make(map[*graph.Task]int, len(tasks))
	for i, t := range tasks {
		idx[t] = i
	}
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(len(tasks)))
	for i, t := range tasks {
		put(uint64(i))
		h.Write([]byte(t.Label))
		flags := uint64(0)
		if t.Redirect {
			flags |= 1
		}
		if t.Detached {
			flags |= 2
		}
		put(flags)
		put(uint64(t.Indegree()))
		for _, s := range t.Successors() {
			if j, ok := idx[s]; ok {
				put(uint64(j))
			}
		}
	}
	return h.Sum64()
}
