package verify

import (
	"time"

	"taskdep/internal/graph"
)

// Mode selects the verifier's integration level in the runtime.
type Mode uint8

const (
	// Off disables the verifier entirely (zero overhead).
	Off Mode = iota
	// Observe records dependence declarations at submission and checks
	// persistent replays for structural divergence; the full graph
	// audit runs only on demand (Runtime.Verify).
	Observe
	// Full is Observe plus a complete graph audit at every taskwait —
	// the paranoid mode whose discovery-time cost tdgbench -verify
	// measures.
	Full
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Observe:
		return "observe"
	case Full:
		return "full"
	}
	return "Mode(?)"
}

// TaskInfo pairs a discovered task with the dependence declarations it
// was submitted with (the graph itself discards them after discovery).
type TaskInfo struct {
	Task *graph.Task
	Deps []graph.Dep
}

// Audit limits: past these the report sets Truncated instead of letting
// verification cost grow without bound.
const (
	// maxBitsetNodes bounds the O(V^2/8)-byte reachability bitsets
	// (16384 nodes = 32 MiB); larger graphs fall back to per-pair DFS.
	maxBitsetNodes = 16384
	// maxPairChecks bounds the number of conflicting pairs tested.
	maxPairChecks = 2_000_000
	// maxDFSSteps bounds total fallback-DFS edge traversals.
	maxDFSSteps = 50_000_000
	// maxCycles bounds how many distinct cycles are reported.
	maxCycles = 8
)

// Audit runs the full structural check over the given tasks. infos must
// be in submission order (it defines the per-key access sequence that
// delimits inoutset groups); opts is the optimization mask the graph
// was discovered with (duplicate edges are violations only under
// OptDedup); extra lists nodes without dependence declarations to
// include in the structural checks (redirect nodes).
//
// The race check is sound only if temporal orderings were materialized
// as edges — run discovery with graph.OptKeepPrunedEdges (the runtime
// does this automatically when Config.Verify is on); otherwise an edge
// pruned because its predecessor had already completed looks like a
// missing ordering.
func Audit(infos []TaskInfo, opts graph.Opt, extra []*graph.Task) *Report {
	t0 := time.Now()
	rep := &Report{Opts: opts}

	// --- node set: infos first (submission order), then every node
	// reachable through successor edges (redirect nodes etc).
	idx := make(map[*graph.Task]int)
	var nodes []*graph.Task
	add := func(t *graph.Task) int {
		if i, ok := idx[t]; ok {
			return i
		}
		i := len(nodes)
		idx[t] = i
		nodes = append(nodes, t)
		return i
	}
	for _, in := range infos {
		add(in.Task)
	}
	for _, t := range extra {
		add(t)
	}
	for scan := 0; scan < len(nodes); scan++ {
		for _, s := range nodes[scan].Successors() {
			add(s)
		}
	}
	n := len(nodes)
	rep.Tasks = n

	// --- adjacency (deduplicated) + duplicate-edge detection + indegree.
	adj := make([][]int, n)
	indeg := make([]int, n)
	dupSeen := make(map[[2]int]int)
	for v, t := range nodes {
		succs := t.Successors()
		rep.Edges += len(succs)
		seen := make(map[int]bool, len(succs))
		for _, s := range succs {
			u := idx[s]
			if seen[u] {
				dupSeen[[2]int{v, u}]++
				rep.DuplicateEdgeCount++
				continue
			}
			seen[u] = true
			adj[v] = append(adj[v], u)
			indeg[u]++
		}
	}
	if opts&graph.OptDedup != 0 {
		for p, c := range dupSeen {
			rep.DuplicateEdges = append(rep.DuplicateEdges, DuplicateEdge{
				Pred: nodes[p[0]], Succ: nodes[p[1]], Count: c + 1,
			})
		}
	}

	// --- dangling redirect nodes: an optimization-(c) node exists to
	// stand for an inoutset group; with no incoming member edge it
	// redirects nothing and any consumer hanging off it waits forever
	// on the producer sentinel alone.
	for v, t := range nodes {
		if t.Redirect && indeg[v] == 0 {
			rep.DanglingRedirects = append(rep.DanglingRedirects, t)
		}
	}

	// --- cycle detection + topological order (DFS postorder).
	rep.Cycles = findCycles(adj, nodes)

	rep.Nodes = nodes

	// --- missing-ordering races.
	if len(rep.Cycles) > 0 {
		// Reachability is ill-defined on a cyclic graph, and the cycle
		// is already fatal; skip the race pass rather than report noise.
		rep.RacesSkipped = true
	} else {
		auditRaces(rep, infos, idx, adj, nodes)
	}
	rep.Elapsed = time.Since(t0)
	return rep
}

// findCycles runs an iterative 3-color DFS; it returns up to maxCycles
// distinct cycles (each as the node path around the loop).
func findCycles(adj [][]int, nodes []*graph.Task) []Cycle {
	n := len(adj)
	color := make([]int8, n) // 0 white, 1 gray, 2 black
	var cycles []Cycle
	type frame struct{ v, child int }
	var stack []frame
	var path []int

	for root := 0; root < n && len(cycles) < maxCycles; root++ {
		if color[root] != 0 {
			continue
		}
		stack = append(stack[:0], frame{root, 0})
		color[root] = 1
		path = append(path[:0], root)
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child < len(adj[f.v]) {
				u := adj[f.v][f.child]
				f.child++
				switch color[u] {
				case 0:
					color[u] = 1
					stack = append(stack, frame{u, 0})
					path = append(path, u)
				case 1:
					if len(cycles) < maxCycles {
						// u is on the current path: slice the loop out.
						start := len(path) - 1
						for start >= 0 && path[start] != u {
							start--
						}
						c := Cycle{}
						for _, v := range path[start:] {
							c.Path = append(c.Path, nodes[v])
						}
						cycles = append(cycles, c)
					}
				}
				continue
			}
			color[f.v] = 2
			stack = stack[:len(stack)-1]
			path = path[:len(path)-1]
		}
	}
	return cycles
}

// auditRaces checks every conflicting same-key pair for a
// happens-before path. Requires an acyclic graph.
func auditRaces(rep *Report, infos []TaskInfo, idx map[*graph.Task]int, adj [][]int, nodes []*graph.Task) {
	// Per-key access sequences in submission order, with inoutset run
	// (group) identification: consecutive InOutSet accesses on a key
	// form one group and are mutually independent by declaration; any
	// other access type closes the group.
	type access struct {
		node int
		ty   graph.DepType
		run  int // inoutset group id, 0 if not InOutSet
	}
	byKey := make(map[graph.Key][]access)
	run := 0
	for _, in := range infos {
		v := idx[in.Task]
		for _, d := range in.Deps {
			seq := byKey[d.Key]
			a := access{node: v, ty: d.Type}
			if d.Type == graph.InOutSet {
				if len(seq) == 0 || seq[len(seq)-1].ty != graph.InOutSet {
					run++
				} else {
					run = seq[len(seq)-1].run
				}
				a.run = run
			}
			byKey[d.Key] = append(byKey[d.Key], a)
		}
	}

	reach := newReachability(adj)
	checks := 0
	reported := make(map[[3]uint64]bool)
	for key, seq := range byKey {
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				a, b := seq[i], seq[j]
				if a.node == b.node {
					continue
				}
				if a.ty == graph.In && b.ty == graph.In {
					continue // two readers never conflict
				}
				if a.ty == graph.InOutSet && b.ty == graph.InOutSet && a.run == b.run {
					continue // same inoutset group: independent by contract
				}
				if nodes[a.node].State() >= graph.Aborted || nodes[b.node].State() >= graph.Aborted {
					// Aborted/Skipped bodies never ran: a missing
					// ordering between them cannot have raced.
					continue
				}
				sig := [3]uint64{uint64(a.node), uint64(b.node), uint64(key)}
				if reported[sig] {
					continue
				}
				if checks >= maxPairChecks {
					rep.Truncated = true
					return
				}
				checks++
				ok, withinBudget := reach.query(a.node, b.node)
				if !withinBudget {
					rep.Truncated = true
					return
				}
				if !ok {
					reported[sig] = true
					rep.Races = append(rep.Races, Race{
						A: nodes[a.node], B: nodes[b.node],
						Key: key, ATy: a.ty, BTy: b.ty,
					})
				}
			}
		}
	}
}

// reachability answers "is a connected to b by a directed path (either
// direction)" — the happens-before question. Small graphs use full
// descendant bitsets computed in one pass; large graphs fall back to
// per-query DFS under a global step budget.
type reachability struct {
	adj   [][]int
	desc  [][]uint64 // descendant bitsets, nil in fallback mode
	words int

	visited []int32 // DFS epoch marks (fallback)
	epoch   int32
	steps   int
}

func newReachability(adj [][]int) *reachability {
	n := len(adj)
	re := &reachability{adj: adj}
	if n > maxBitsetNodes {
		re.visited = make([]int32, n)
		return re
	}
	re.words = (n + 63) / 64
	re.desc = make([][]uint64, n)
	// Process in reverse topological order so every successor's bitset
	// is final before it is merged into its predecessors'.
	order := topoOrder(adj)
	backing := make([]uint64, n*re.words)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		bs := backing[v*re.words : (v+1)*re.words]
		for _, u := range adj[v] {
			bs[u/64] |= 1 << (uint(u) % 64)
			for w, x := range re.desc[u] {
				bs[w] |= x
			}
		}
		re.desc[v] = bs
	}
	return re
}

// topoOrder returns a topological order of an acyclic adj (DFS reverse
// postorder).
func topoOrder(adj [][]int) []int {
	n := len(adj)
	mark := make([]bool, n)
	order := make([]int, 0, n)
	type frame struct{ v, child int }
	var stack []frame
	for root := 0; root < n; root++ {
		if mark[root] {
			continue
		}
		mark[root] = true
		stack = append(stack[:0], frame{root, 0})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child < len(adj[f.v]) {
				u := adj[f.v][f.child]
				f.child++
				if !mark[u] {
					mark[u] = true
					stack = append(stack, frame{u, 0})
				}
				continue
			}
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Reverse postorder.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// query reports whether a path a~>b or b~>a exists; the second result
// is false once the step budget is exhausted.
func (re *reachability) query(a, b int) (connected, withinBudget bool) {
	if re.desc != nil {
		if re.desc[a][b/64]&(1<<(uint(b)%64)) != 0 {
			return true, true
		}
		return re.desc[b][a/64]&(1<<(uint(a)%64)) != 0, true
	}
	if re.dfs(a, b) {
		return true, re.steps < maxDFSSteps
	}
	if re.steps >= maxDFSSteps {
		return false, false
	}
	return re.dfs(b, a), re.steps < maxDFSSteps
}

func (re *reachability) dfs(from, to int) bool {
	re.epoch++
	stack := []int{from}
	re.visited[from] = re.epoch
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range re.adj[v] {
			re.steps++
			if re.steps >= maxDFSSteps {
				return false
			}
			if u == to {
				return true
			}
			if re.visited[u] != re.epoch {
				re.visited[u] = re.epoch
				stack = append(stack, u)
			}
		}
	}
	return false
}
