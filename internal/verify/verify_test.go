package verify

import (
	"strings"
	"testing"

	"taskdep/internal/graph"
)

// mk builds a bare task node for seeded-structure tests; correct
// discovery can never produce the broken shapes these construct.
func mk(id int64, label string) *graph.Task {
	return &graph.Task{ID: id, Label: label}
}

// TestSeededRace: two writers on the same key with no happens-before
// path must be reported with both task labels and the offending key.
func TestSeededRace(t *testing.T) {
	w1 := mk(0, "writer-one")
	w2 := mk(1, "writer-two")
	infos := []TaskInfo{
		{Task: w1, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
		{Task: w2, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
	}
	rep := Audit(infos, graph.OptAll, nil)
	if rep.OK() {
		t.Fatalf("expected a race finding, got OK: %s", rep)
	}
	if len(rep.Races) != 1 {
		t.Fatalf("want 1 race, got %d: %s", len(rep.Races), rep)
	}
	r := rep.Races[0]
	if r.Key != 42 {
		t.Errorf("race key = %d, want 42", r.Key)
	}
	s := r.String()
	if !strings.Contains(s, "writer-one") || !strings.Contains(s, "writer-two") {
		t.Errorf("race witness must name both tasks: %q", s)
	}
	if !strings.Contains(s, "42") {
		t.Errorf("race witness must name the key: %q", s)
	}
}

// TestOrderedWritersClean: the same two writers connected by an edge
// are not a race.
func TestOrderedWritersClean(t *testing.T) {
	w1 := mk(0, "w1")
	w2 := mk(1, "w2")
	graph.ForceEdge(w1, w2)
	infos := []TaskInfo{
		{Task: w1, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
		{Task: w2, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
	}
	if rep := Audit(infos, graph.OptAll, nil); !rep.OK() {
		t.Fatalf("ordered writers flagged: %s", rep)
	}
}

// TestTransitiveOrdering: ordering through an intermediate task (not a
// direct edge) satisfies the happens-before check.
func TestTransitiveOrdering(t *testing.T) {
	a, b, c := mk(0, "a"), mk(1, "b"), mk(2, "c")
	graph.ForceEdge(a, b)
	graph.ForceEdge(b, c)
	infos := []TaskInfo{
		{Task: a, Deps: []graph.Dep{{Key: 1, Type: graph.Out}}},
		{Task: c, Deps: []graph.Dep{{Key: 1, Type: graph.Out}}},
	}
	if rep := Audit(infos, graph.OptAll, nil); !rep.OK() {
		t.Fatalf("transitively ordered writers flagged: %s", rep)
	}
}

// TestSeededCycle: a dependency loop is reported by the audit — before
// any executor hangs on it.
func TestSeededCycle(t *testing.T) {
	a, b, c := mk(0, "a"), mk(1, "b"), mk(2, "c")
	graph.ForceEdge(a, b)
	graph.ForceEdge(b, c)
	graph.ForceEdge(c, a)
	rep := Audit([]TaskInfo{{Task: a}, {Task: b}, {Task: c}}, graph.OptAll, nil)
	if len(rep.Cycles) == 0 {
		t.Fatalf("cycle not detected: %s", rep)
	}
	if !rep.RacesSkipped {
		t.Errorf("race pass should be skipped on a cyclic graph")
	}
	path := rep.Cycles[0].String()
	for _, name := range []string{"a", "b", "c"} {
		if !strings.Contains(path, `"`+name+`"`) {
			t.Errorf("cycle path %q missing task %q", path, name)
		}
	}
}

// TestInOutSetRedirectReachability: m inoutset writers and n readers
// where every ordering flows only through the optimization-(c) redirect
// node. The audit must follow paths through the redirect (clean), and
// the discovery must have created m+n edges, not m*n.
func TestInOutSetRedirectReachability(t *testing.T) {
	const key graph.Key = 7
	const m, n = 3, 2
	g := graph.New(graph.OptInOutSetNode|graph.OptDedup|graph.OptKeepPrunedEdges, func(*graph.Task) {})
	var infos []TaskInfo
	for i := 0; i < m; i++ {
		deps := []graph.Dep{{Key: key, Type: graph.InOutSet}}
		infos = append(infos, TaskInfo{Task: g.Submit("set-writer", deps, nil, nil), Deps: deps})
	}
	for i := 0; i < n; i++ {
		deps := []graph.Dep{{Key: key, Type: graph.In}}
		infos = append(infos, TaskInfo{Task: g.Submit("reader", deps, nil, nil), Deps: deps})
	}
	g.Flush()
	if got := g.Stats().EdgesCreated; got != m+n {
		t.Fatalf("optimization (c) should give m+n=%d edges, got %d", m+n, got)
	}
	rep := Audit(infos, g.Opts(), g.RedirectNodes())
	if !rep.OK() {
		t.Fatalf("m x n ordering through redirect node flagged: %s", rep)
	}
	// Redirect node must be part of the audited set (reached via edges).
	if rep.Tasks != m+n+1 {
		t.Errorf("audited %d nodes, want %d (m+n+redirect)", rep.Tasks, m+n+1)
	}
}

// TestSeveredRedirect: the same m x n shape with the redirect's outgoing
// side severed is m*n missing orderings.
func TestSeveredRedirect(t *testing.T) {
	const m, n = 3, 2
	red := &graph.Task{ID: 100, Label: "redirect", Redirect: true}
	var infos []TaskInfo
	for i := 0; i < m; i++ {
		w := mk(int64(i), "set-writer")
		graph.ForceEdge(w, red)
		infos = append(infos, TaskInfo{Task: w, Deps: []graph.Dep{{Key: 7, Type: graph.InOutSet}}})
	}
	for i := 0; i < n; i++ {
		r := mk(int64(10+i), "reader")
		// No edge redirect -> reader: ordering severed.
		infos = append(infos, TaskInfo{Task: r, Deps: []graph.Dep{{Key: 7, Type: graph.In}}})
	}
	rep := Audit(infos, graph.OptAll, nil)
	if len(rep.Races) != m*n {
		t.Fatalf("want %d races (every writer x reader pair), got %d: %s", m*n, len(rep.Races), rep)
	}
}

// TestInOutSetGroupsAcrossWriter: two inoutset groups on the same key
// separated by a plain writer are distinct groups — members of
// different groups DO conflict.
func TestInOutSetGroupsAcrossWriter(t *testing.T) {
	a := mk(0, "groupA")
	b := mk(1, "groupB")
	infos := []TaskInfo{
		{Task: a, Deps: []graph.Dep{{Key: 5, Type: graph.InOutSet}}},
		{Task: mk(2, "w"), Deps: []graph.Dep{{Key: 5, Type: graph.Out}}},
		{Task: b, Deps: []graph.Dep{{Key: 5, Type: graph.InOutSet}}},
	}
	rep := Audit(infos, graph.OptAll, nil)
	// No edges at all: (a,w), (w,b), (a,b) all unordered conflicts.
	if len(rep.Races) != 3 {
		t.Fatalf("want 3 races across split inoutset groups, got %d: %s", len(rep.Races), rep)
	}
}

// TestPrunedEdgeNeedsKeepFlag documents why the runtime discovers with
// OptKeepPrunedEdges under verify mode: without it, an ordering that
// was enforced temporally (predecessor completed before the successor
// was submitted) is pruned and looks like a race.
func TestPrunedEdgeNeedsKeepFlag(t *testing.T) {
	run := func(opts graph.Opt) *Report {
		var ready []*graph.Task
		g := graph.New(opts, func(t *graph.Task) { ready = append(ready, t) })
		deps := []graph.Dep{{Key: 3, Type: graph.Out}}
		a := g.Submit("a", deps, nil, nil)
		// Drain: a completes before b is discovered.
		for len(ready) > 0 {
			t := ready[len(ready)-1]
			ready = ready[:len(ready)-1]
			g.Start(t)
			ready = append(ready, g.Complete(t)...)
		}
		b := g.Submit("b", deps, nil, nil)
		return Audit([]TaskInfo{{Task: a, Deps: deps}, {Task: b, Deps: deps}}, opts, nil)
	}
	if rep := run(graph.OptDedup); len(rep.Races) != 1 {
		t.Fatalf("without OptKeepPrunedEdges the pruned edge should look like a race (got %d findings: %s)", rep.NumFindings(), rep)
	}
	if rep := run(graph.OptDedup | graph.OptKeepPrunedEdges); !rep.OK() {
		t.Fatalf("with OptKeepPrunedEdges the temporal ordering must be visible: %s", rep)
	}
}

// TestDanglingRedirect: a redirect node with no member edge feeding it.
func TestDanglingRedirect(t *testing.T) {
	red := &graph.Task{ID: 9, Label: "redirect", Redirect: true}
	rep := Audit(nil, graph.OptAll, []*graph.Task{red})
	if len(rep.DanglingRedirects) != 1 {
		t.Fatalf("dangling redirect not flagged: %s", rep)
	}
}

// TestDuplicateEdges: a repeated (pred, succ) pair is a violation under
// OptDedup and informational otherwise.
func TestDuplicateEdges(t *testing.T) {
	a, b := mk(0, "a"), mk(1, "b")
	graph.ForceEdge(a, b)
	graph.ForceEdge(a, b)
	infos := []TaskInfo{{Task: a}, {Task: b}}
	rep := Audit(infos, graph.OptDedup, nil)
	if len(rep.DuplicateEdges) != 1 || rep.DuplicateEdges[0].Count != 2 {
		t.Fatalf("duplicate under OptDedup not flagged: %s", rep)
	}
	rep = Audit(infos, 0, nil)
	if len(rep.DuplicateEdges) != 0 {
		t.Fatalf("duplicates without OptDedup are not violations: %s", rep)
	}
	if rep.DuplicateEdgeCount != 1 {
		t.Fatalf("DuplicateEdgeCount = %d, want 1", rep.DuplicateEdgeCount)
	}
}

// TestDedupInvariantOnRealGraph: discovery with OptDedup must never
// leave a duplicate for the audit to find, even when a task declares
// the same key several times.
func TestDedupInvariantOnRealGraph(t *testing.T) {
	g := graph.New(graph.OptDedup|graph.OptKeepPrunedEdges, func(*graph.Task) {})
	var infos []TaskInfo
	d1 := []graph.Dep{{Key: 1, Type: graph.Out}}
	infos = append(infos, TaskInfo{Task: g.Submit("w", d1, nil, nil), Deps: d1})
	d2 := []graph.Dep{{Key: 1, Type: graph.In}, {Key: 1, Type: graph.In}}
	infos = append(infos, TaskInfo{Task: g.Submit("rr", d2, nil, nil), Deps: d2})
	rep := Audit(infos, g.Opts(), nil)
	if len(rep.DuplicateEdges) != 0 {
		t.Fatalf("OptDedup let a duplicate through: %s", rep)
	}
	if !rep.OK() {
		t.Fatalf("clean discovery flagged: %s", rep)
	}
}

// TestSignature: identical recordings hash identically; a structural
// mutation changes the hash.
func TestSignature(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New(graph.OptAll, func(*graph.Task) {})
		g.BeginRecording()
		d := []graph.Dep{{Key: 1, Type: graph.InOut}}
		g.Submit("s0", d, nil, nil)
		g.Submit("s1", d, nil, nil)
		g.Flush()
		g.EndRecording()
		return g
	}
	g1, g2 := build(), build()
	s1, s2 := Signature(g1.Recorded()), Signature(g2.Recorded())
	if s1 != s2 {
		t.Fatalf("identical recordings hash differently: %#x vs %#x", s1, s2)
	}
	rec := g2.Recorded()
	graph.ForceEdge(rec[0], rec[1]) // duplicate edge: structure mutated
	if mutated := Signature(rec); mutated == s1 {
		t.Fatalf("mutated recording kept signature %#x", s1)
	}
}

// TestRecorderReplayDivergence: unit-level Recorder flow — a replay
// whose dependence declarations differ from the recording is flagged;
// an identical replay is clean.
func TestRecorderReplayDivergence(t *testing.T) {
	g := graph.New(graph.OptAll|graph.OptKeepPrunedEdges, func(*graph.Task) {})
	r := NewRecorder(graph.OptAll)
	g.BeginRecording()
	r.BeginRecording()
	deps := []graph.Dep{{Key: 1, Type: graph.InOut}}
	tk := g.Submit("step", deps, nil, nil)
	r.Record(tk, deps)
	g.Flush()
	g.EndRecording()
	r.EndRecording(g.Recorded())

	// Clean replay.
	r.BeginReplay(1, true)
	r.ReplayNext("step", deps)
	if divs := r.EndReplay(g.Recorded()); len(divs) != 0 {
		t.Fatalf("identical replay flagged: %v", divs)
	}
	// Diverging replay: same count, different key.
	r.BeginReplay(2, true)
	r.ReplayNext("step", []graph.Dep{{Key: 99, Type: graph.InOut}})
	divs := r.EndReplay(g.Recorded())
	if len(divs) != 1 {
		t.Fatalf("diverging replay not flagged: %v", divs)
	}
	if divs[0].Iter != 2 || !strings.Contains(divs[0].Detail, "99") {
		t.Errorf("divergence should carry the iteration and the declared deps: %+v", divs[0])
	}
}

// TestReportWriteDOT: race witnesses render as highlighted dashed edges.
func TestReportWriteDOT(t *testing.T) {
	w1 := mk(0, "writer-one")
	w2 := mk(1, "writer-two")
	infos := []TaskInfo{
		{Task: w1, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
		{Task: w2, Deps: []graph.Dep{{Key: 42, Type: graph.Out}}},
	}
	rep := Audit(infos, graph.OptAll, nil)
	var b strings.Builder
	if err := rep.WriteDOT(&b, "witness"); err != nil {
		t.Fatal(err)
	}
	dot := b.String()
	for _, want := range []string{"color=red", "style=dashed", "race key 42", "writer-one", "writer-two"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT export missing %q:\n%s", want, dot)
		}
	}
}

// TestAuditEmpty: an empty graph is trivially OK.
func TestAuditEmpty(t *testing.T) {
	if rep := Audit(nil, graph.OptAll, nil); !rep.OK() {
		t.Fatalf("empty audit not OK: %s", rep)
	}
}
