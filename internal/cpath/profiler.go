package cpath

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"taskdep/internal/graph"
	"taskdep/internal/obs"
)

// Options configures a Profiler.
type Options struct {
	// Precise reads the real clock on every stamp instead of the cached
	// atomic; exact attribution at ~30-60 ns per stamp.
	Precise bool
	// Tick is the cached-clock refresh period; <= 0 means DefaultTick.
	Tick time.Duration
	// Retain keeps every observed task until TakeRetained, so tests and
	// the cpath benchmark can run the offline exact longest-path
	// cross-check. Pins task memory; not for production.
	Retain bool
	// PathMax bounds the critical-path entries rendered into a Report
	// (walking back from the critical task); <= 0 means 64.
	PathMax int
}

// pslot is one execution slot's aggregation state. Single-writer: only
// the slot's owning goroutine (worker w for slot w, the producer for
// slot W) writes, and always BEFORE the finished task's live-count
// decrement — so a producer that observed the graph drained reads
// every slot exactly (the same quiescence argument as obs shards).
// Padded to keep neighbouring slots off one cache line.
type pslot struct {
	tasks    int64
	discNs   int64
	waitNs   int64
	execNs   int64
	best     *graph.Task // highest cpTotal finished on this slot, this window
	bestTot  int64
	retained []*graph.Task
	_        [64]byte
}

// Profiler aggregates finished tasks into critical-path window reports.
// One per runtime; rt calls Observe from the finishing goroutine and
// EndWindow from the producer at quiescent points (taskwait, compiled
// iteration barriers).
type Profiler struct {
	clock *Clock
	reg   *obs.Registry // phase counters destination (may be nil)
	opts  Options

	slots []pslot
	extMu sync.Mutex // guards ext: finishes from unowned goroutines
	ext   pslot

	// Producer-only window state.
	window     int64
	winStartNs int64

	last atomic.Pointer[Report]
}

// New creates a profiler with nslots owner slots (callers pass
// workers+1, matching the obs registry layout). reg, when non-nil,
// receives the taskdep_phase_* counter totals, flushed once per window
// at EndWindow — the cold-point-flush discipline: the per-task hot path
// touches only the owner's padded slot, never a shared counter.
func New(nslots int, reg *obs.Registry, opt Options) *Profiler {
	if nslots < 1 {
		nslots = 1
	}
	if opt.PathMax <= 0 {
		opt.PathMax = 64
	}
	return &Profiler{
		clock: NewClock(opt.Precise, opt.Tick),
		reg:   reg,
		opts:  opt,
		slots: make([]pslot, nslots),
	}
}

// Now is the clock read handed to graph.Config.CPathNow.
func (p *Profiler) Now() int64 { return p.clock.Now() }

// ClockRef is the cached clock cell for graph.Config.CPathCached (nil
// in precise mode).
func (p *Profiler) ClockRef() *atomic.Int64 { return p.clock.CachedRef() }

// Close stops the clock updater.
func (p *Profiler) Close() { p.clock.Stop() }

// Observe folds a finished task into slot's aggregation state and the
// obs phase counters. The caller must be the slot's owning goroutine
// and must call it AFTER graph.StampFinish(t) and BEFORE the terminal
// transition that decrements the live gauge (rt does both on the
// finish path); out-of-range slots route to a mutex-guarded external
// slot (detached completions fulfilled off-runtime).
func (p *Profiler) Observe(slot int, t *graph.Task) {
	d, w, e := t.PhaseNs()
	tot, _, _, _ := t.CP()
	if uint(slot) < uint(len(p.slots)) {
		p.observeInto(&p.slots[slot], t, tot, d, w, e)
	} else {
		p.extMu.Lock()
		p.observeInto(&p.ext, t, tot, d, w, e)
		p.extMu.Unlock()
	}
}

func (p *Profiler) observeInto(s *pslot, t *graph.Task, tot, d, w, e int64) {
	s.tasks++
	s.discNs += d
	s.waitNs += w
	s.execNs += e
	if s.best == nil || tot > s.bestTot {
		s.best, s.bestTot = t, tot
	}
	if p.opts.Retain {
		s.retained = append(s.retained, t)
	}
}

// ObserveRelease accounts the successor-release phase of a finish
// (measured by rt after the release walk) to the obs release counter.
// Kept out of the window sums for two reasons: release time overlaps
// the successors' ready-wait (adding it to T1 would double-count), and
// it is measured AFTER the terminal transition — past the quiescence
// point EndWindow relies on for its plain pslot reads — so it may only
// go to the obs pend shards, whose cold-point flush discipline
// tolerates post-decrement writes. Visible as
// taskdep_phase_release_ns_total.
func (p *Profiler) ObserveRelease(slot int, ns int64) {
	// ns == 0 is the cached-clock common case (a release walk rarely
	// spans a tick); skipping the shard write keeps the finish path at
	// a branch.
	if p.reg != nil && ns != 0 {
		p.reg.AddSlot(slot, obs.CPhaseReleaseNs, ns)
	}
}

// TakeRetained drains the retained task lists (Retain mode). Producer
// only, at a quiescent point.
func (p *Profiler) TakeRetained() []*graph.Task {
	var out []*graph.Task
	for i := range p.slots {
		out = append(out, p.slots[i].retained...)
		p.slots[i].retained = nil
	}
	p.extMu.Lock()
	out = append(out, p.ext.retained...)
	p.ext.retained = nil
	p.extMu.Unlock()
	return out
}

// EndWindow closes the current profiling window: merges every slot,
// builds the Report (critical path, parallelism, what-if projections),
// resets the per-window state and publishes the report for /criticalpath.
// Producer-only, at a quiescent point (the graph drained), which is
// also what makes the plain slot reads race-free: every Observe was
// sequenced before a live-gauge decrement the producer has observed.
// Returns nil if the window finished no tasks.
func (p *Profiler) EndWindow(workers int) *Report {
	now := p.clock.Now()
	var tasks, disc, wait, exec, bestTot int64
	var best *graph.Task
	merge := func(s *pslot) {
		tasks += s.tasks
		disc += s.discNs
		wait += s.waitNs
		exec += s.execNs
		if s.best != nil && (best == nil || s.bestTot > bestTot) {
			best, bestTot = s.best, s.bestTot
		}
		s.tasks, s.discNs, s.waitNs, s.execNs = 0, 0, 0, 0
		s.best, s.bestTot = nil, 0
	}
	for i := range p.slots {
		merge(&p.slots[i])
	}
	p.extMu.Lock()
	merge(&p.ext)
	p.extMu.Unlock()

	// Cold-point flush of the taskdep_phase_* sums: one Add per counter
	// per window instead of three shard writes per task on the finish
	// hot path (the release counter flows through the obs pend shards
	// instead — see ObserveRelease).
	if p.reg != nil && tasks > 0 {
		p.reg.Add(obs.CPhaseDiscoveryNs, disc)
		p.reg.Add(obs.CPhaseReadyWaitNs, wait)
		p.reg.Add(obs.CPhaseExecuteNs, exec)
	}

	start := p.winStartNs
	p.winStartNs = now
	if tasks == 0 {
		return nil
	}
	p.window++

	r := &Report{
		Window:    p.window,
		Workers:   workers,
		WallNs:    now - start,
		Tasks:     tasks,
		T1Ns:      exec,
		SumDiscNs: disc,
		SumWaitNs: wait,
	}
	if best != nil {
		total, cd, cw, ce := best.CP()
		r.TInfNs = total
		r.CPDiscNs, r.CPWaitNs, r.CPExecNs = cd, cw, ce
		if total > 0 {
			r.DiscShare = float64(cd) / float64(total)
			r.AvgParallelism = float64(exec) / float64(total)
		}
		r.Path, r.CPLen = pathOf(best, p.opts.PathMax)
	}
	r.WhatIf = project(r.T1Ns, r.TInfNs, r.CPDiscNs, workers)
	p.last.Store(r)
	return r
}

// Last returns the most recently completed window's report, or nil.
func (p *Profiler) Last() *Report { return p.last.Load() }

// pathOf recovers the critical path by walking the cpBest chain from
// the critical task back to its root, returning up to max entries
// (nearest the sink) in root-first order plus the full path length.
func pathOf(sink *graph.Task, max int) ([]PathEntry, int) {
	n := 0
	for t := sink; t != nil; t = t.CPBest() {
		n++
	}
	entries := make([]PathEntry, 0, min(n, max))
	for t := sink; t != nil && len(entries) < max; t = t.CPBest() {
		d, w, e := t.PhaseNs()
		entries = append(entries, PathEntry{
			ID: t.ID, Label: t.Label,
			DiscNs: d, WaitNs: w, ExecNs: e,
		})
	}
	// Walked sink->root; report root->sink.
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	return entries, n
}

// PathEntry is one task on the critical path with its own phase split.
type PathEntry struct {
	ID     int64  `json:"id"`
	Label  string `json:"label"`
	DiscNs int64  `json:"disc_ns"`
	WaitNs int64  `json:"wait_ns"`
	ExecNs int64  `json:"exec_ns"`
}

// Report is one window's critical-path analysis — the paper's offline
// discovery-impact figures as a live structure.
type Report struct {
	Window  int64 `json:"window"`
	Workers int   `json:"workers"`
	WallNs  int64 `json:"wall_ns"`
	Tasks   int64 `json:"tasks"`

	// Work-law quantities: T1 is total execute time; the sums split the
	// remaining per-task time by phase (release time is tracked by the
	// taskdep_phase_release_ns_total counter, not here — it overlaps
	// successors' ready-wait).
	T1Ns      int64 `json:"t1_ns"`
	SumDiscNs int64 `json:"sum_disc_ns"`
	SumWaitNs int64 `json:"sum_wait_ns"`

	// Span-law quantities: T-infinity and its phase split along the
	// critical path.
	TInfNs   int64 `json:"tinf_ns"`
	CPDiscNs int64 `json:"cp_disc_ns"`
	CPWaitNs int64 `json:"cp_wait_ns"`
	CPExecNs int64 `json:"cp_exec_ns"`

	// DiscShare is the discovery share of the critical path,
	// CPDiscNs / TInfNs — the paper's headline quantity.
	DiscShare float64 `json:"disc_share"`
	// AvgParallelism is T1/TInf, the graph's inherent parallelism.
	AvgParallelism float64 `json:"avg_parallelism"`

	WhatIf WhatIf `json:"what_if"`

	// Path is the critical path (root first, truncated to PathMax
	// entries); CPLen is its full task count.
	Path  []PathEntry `json:"path,omitempty"`
	CPLen int         `json:"cp_len"`
}

// WhatIf holds Brent-bound makespan projections: with work T1 and span
// TInf, P greedy workers finish within max(TInf, T1/P) (and at most
// T1/P + TInf). "Zero-cost discovery" removes the discovery component
// from the span — the paper's perfectly-cached-TDG limit; T1 is
// execute-only and unchanged by discovery cost.
type WhatIf struct {
	// BrentNs is the projected makespan at the current worker count.
	BrentNs int64 `json:"brent_ns"`
	// ZeroDiscTInfNs is the span with discovery removed from the
	// critical path (TInf - CPDisc).
	ZeroDiscTInfNs int64 `json:"zero_disc_tinf_ns"`
	// ZeroDiscBrentNs is the projected makespan at the current worker
	// count with zero-cost discovery.
	ZeroDiscBrentNs int64 `json:"zero_disc_brent_ns"`
	// Speedup is BrentNs / ZeroDiscBrentNs: how much faster this window
	// would drain if discovery were free (>= 1).
	Speedup float64 `json:"speedup"`
	// Projections sweeps worker counts (1, 2, 4, ... up to 2x current).
	Projections []BrentRow `json:"projections"`
}

// BrentRow is one worker-count point of the projection sweep.
type BrentRow struct {
	Workers        int   `json:"workers"`
	MakespanNs     int64 `json:"makespan_ns"`
	ZeroDiscNs     int64 `json:"zero_disc_makespan_ns"`
	ParallelismCap bool  `json:"span_bound"` // true when TInf dominates T1/P
}

// brent is the Brent-bound makespan projection max(tinf, t1/p).
func brent(t1, tinf int64, p int) int64 {
	if p < 1 {
		p = 1
	}
	perWorker := t1 / int64(p)
	if tinf > perWorker {
		return tinf
	}
	return perWorker
}

// project builds the what-if block from a window's work/span numbers.
func project(t1, tinf, cpDisc int64, workers int) WhatIf {
	zeroTInf := tinf - cpDisc
	if zeroTInf < 0 {
		zeroTInf = 0
	}
	w := WhatIf{
		BrentNs:         brent(t1, tinf, workers),
		ZeroDiscTInfNs:  zeroTInf,
		ZeroDiscBrentNs: brent(t1, zeroTInf, workers),
	}
	if w.ZeroDiscBrentNs > 0 {
		w.Speedup = float64(w.BrentNs) / float64(w.ZeroDiscBrentNs)
	} else {
		w.Speedup = 1
	}
	for p := 1; p <= 2*workers; p *= 2 {
		w.Projections = append(w.Projections, BrentRow{
			Workers:        p,
			MakespanNs:     brent(t1, tinf, p),
			ZeroDiscNs:     brent(t1, zeroTInf, p),
			ParallelismCap: tinf >= t1/int64(p),
		})
	}
	return w
}

// WriteText renders the report as the human-readable form served by
// /criticalpath?format=text.
func (r *Report) WriteText(w io.Writer) {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	fmt.Fprintf(w, "window %d: %d tasks, %d workers, wall %.3f ms\n",
		r.Window, r.Tasks, r.Workers, ms(r.WallNs))
	fmt.Fprintf(w, "work   T1   = %.3f ms execute (+ %.3f ms discovery, %.3f ms ready-wait across tasks)\n",
		ms(r.T1Ns), ms(r.SumDiscNs), ms(r.SumWaitNs))
	fmt.Fprintf(w, "span   Tinf = %.3f ms  (discovery %.3f ms [%.1f%%], ready-wait %.3f ms, execute %.3f ms; %d tasks on path)\n",
		ms(r.TInfNs), ms(r.CPDiscNs), r.DiscShare*100, ms(r.CPWaitNs), ms(r.CPExecNs), r.CPLen)
	fmt.Fprintf(w, "avg parallelism T1/Tinf = %.2f\n", r.AvgParallelism)
	fmt.Fprintf(w, "what-if: makespan(P=%d) >= %.3f ms; zero-cost discovery -> %.3f ms (%.2fx)\n",
		r.Workers, ms(r.WhatIf.BrentNs), ms(r.WhatIf.ZeroDiscBrentNs), r.WhatIf.Speedup)
	for _, row := range r.WhatIf.Projections {
		bound := "work-bound"
		if row.ParallelismCap {
			bound = "span-bound"
		}
		fmt.Fprintf(w, "  P=%-4d makespan >= %10.3f ms   zero-disc >= %10.3f ms   (%s)\n",
			row.Workers, ms(row.MakespanNs), ms(row.ZeroDiscNs), bound)
	}
	if len(r.Path) > 0 {
		fmt.Fprintf(w, "critical path (root -> sink, %d of %d tasks):\n", len(r.Path), r.CPLen)
		for _, e := range r.Path {
			fmt.Fprintf(w, "  #%-8d %-24s disc %8d ns  wait %8d ns  exec %8d ns\n",
				e.ID, e.Label, e.DiscNs, e.WaitNs, e.ExecNs)
		}
	}
}
