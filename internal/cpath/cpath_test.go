package cpath

import (
	"strings"
	"testing"
	"time"

	"taskdep/internal/graph"
)

func TestClockPrecise(t *testing.T) {
	c := NewClock(true, 0)
	defer c.Stop()
	if c.CachedRef() != nil {
		t.Fatalf("precise clock exposed a cached cell")
	}
	a := c.Now()
	time.Sleep(time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("precise clock did not advance: %d then %d", a, b)
	}
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		v := c.Now()
		if v < prev {
			t.Fatalf("precise clock went backwards: %d after %d", v, prev)
		}
		prev = v
	}
}

func TestClockCached(t *testing.T) {
	c := NewClock(false, 50*time.Microsecond)
	ref := c.CachedRef()
	if ref == nil {
		t.Fatalf("cached clock returned a nil CachedRef")
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Now() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cached clock never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := ref.Load(), c.Now(); got > want {
		t.Fatalf("CachedRef.Load()=%d ahead of Now()=%d", got, want)
	}
	prev := int64(0)
	for i := 0; i < 1000; i++ {
		v := c.Now()
		if v < prev {
			t.Fatalf("cached clock went backwards: %d after %d", v, prev)
		}
		prev = v
	}
	c.Stop()
	frozen := c.Now()
	time.Sleep(2 * time.Millisecond)
	if got := c.Now(); got != frozen {
		t.Fatalf("stopped clock moved: %d then %d", frozen, got)
	}
	c.Stop() // idempotent
}

func TestBrent(t *testing.T) {
	cases := []struct {
		t1, tinf int64
		p        int
		want     int64
	}{
		{1000, 30, 4, 250}, // work-bound
		{100, 80, 4, 80},   // span-bound
		{100, 80, 0, 100},  // p clamped to 1
		{0, 0, 8, 0},
	}
	for _, c := range cases {
		if got := brent(c.t1, c.tinf, c.p); got != c.want {
			t.Errorf("brent(%d,%d,%d) = %d, want %d", c.t1, c.tinf, c.p, got, c.want)
		}
	}
}

func TestProject(t *testing.T) {
	// Work-bound window: removing discovery from the span changes
	// nothing because T1/P dominates.
	w := project(1000, 100, 40, 2)
	if w.BrentNs != 500 || w.ZeroDiscTInfNs != 60 || w.ZeroDiscBrentNs != 500 {
		t.Fatalf("work-bound projection: %+v", w)
	}
	if w.Speedup != 1 {
		t.Fatalf("work-bound speedup = %v, want 1", w.Speedup)
	}
	if len(w.Projections) != 3 { // P = 1, 2, 4
		t.Fatalf("projection sweep: %+v", w.Projections)
	}
	if r := w.Projections[0]; r.Workers != 1 || r.MakespanNs != 1000 || r.ParallelismCap {
		t.Fatalf("P=1 row: %+v", r)
	}

	// Span-dominated window where the span IS discovery: the zero-disc
	// projection falls back to the work bound.
	w = project(100, 90, 90, 4)
	if w.BrentNs != 90 || w.ZeroDiscTInfNs != 0 || w.ZeroDiscBrentNs != 25 {
		t.Fatalf("span-bound projection: %+v", w)
	}
	if w.Speedup != float64(90)/25 {
		t.Fatalf("span-bound speedup = %v", w.Speedup)
	}

	// Degenerate: no work at all. Speedup must fall back to 1, not NaN.
	w = project(0, 10, 20, 1)
	if w.ZeroDiscTInfNs != 0 || w.ZeroDiscBrentNs != 0 || w.Speedup != 1 {
		t.Fatalf("degenerate projection: %+v", w)
	}
}

// driveSerial executes every ready task in FIFO order on the calling
// goroutine, following rt's finish discipline (StampFinish, Observe,
// then the terminal transition), with an optional per-task delay keyed
// by label. Returns the number of tasks executed.
func driveSerial(g *graph.Graph, p *Profiler, ready *[]*graph.Task, slot int, delay map[string]time.Duration) int {
	n := 0
	for len(*ready) > 0 {
		tk := (*ready)[0]
		*ready = (*ready)[1:]
		g.Start(tk)
		if d := delay[tk.Label]; d > 0 {
			time.Sleep(d)
		}
		g.StampFinish(tk)
		p.Observe(slot, tk)
		*ready = append(*ready, g.CompleteInto(tk, nil)...)
		n++
	}
	return n
}

// TestDiamondWindowMatchesExact drives an A -> {B, C} -> D diamond
// serially under the precise clock and checks the online release-time
// fold against the offline exact longest-path computation, plus the
// report's structural invariants.
func TestDiamondWindowMatchesExact(t *testing.T) {
	p := New(2, nil, Options{Precise: true, Retain: true})
	defer p.Close()
	var ready []*graph.Task
	g := graph.NewWithConfig(graph.Config{
		Opts:     graph.OptAll,
		OnReady:  func(tk *graph.Task) { ready = append(ready, tk) },
		CPath:    true,
		CPathNow: p.Now,
	})
	const k1, k2, k3 = graph.Key(1), graph.Key(2), graph.Key(3)
	g.Submit("A", []graph.Dep{{Key: k1, Type: graph.InOut}}, nil, nil)
	g.Submit("B", []graph.Dep{{Key: k1, Type: graph.In}, {Key: k2, Type: graph.InOut}}, nil, nil)
	g.Submit("C", []graph.Dep{{Key: k1, Type: graph.In}, {Key: k3, Type: graph.InOut}}, nil, nil)
	g.Submit("D", []graph.Dep{{Key: k2, Type: graph.In}, {Key: k3, Type: graph.In}}, nil, nil)
	delays := map[string]time.Duration{
		"A": time.Millisecond, "B": 3 * time.Millisecond,
		"C": time.Millisecond, "D": time.Millisecond,
	}
	if n := driveSerial(g, p, &ready, 0, delays); n != 4 {
		t.Fatalf("executed %d tasks, want 4", n)
	}
	rep := p.EndWindow(1)
	if rep == nil || rep.Tasks != 4 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.CPLen != 3 {
		t.Fatalf("diamond cp-len = %d, want 3", rep.CPLen)
	}
	if len(rep.Path) != 3 || rep.Path[0].Label != "A" || rep.Path[2].Label != "D" {
		t.Fatalf("path endpoints: %+v", rep.Path)
	}
	if rep.DiscShare < 0 || rep.DiscShare > 1 {
		t.Fatalf("disc share %v out of range", rep.DiscShare)
	}
	if rep.TInfNs < (1+3+1)*int64(time.Millisecond) {
		t.Fatalf("Tinf %d ns below the serial floor", rep.TInfNs)
	}
	if rep.TInfNs != rep.CPDiscNs+rep.CPWaitNs+rep.CPExecNs {
		t.Fatalf("Tinf %d != phase split %d+%d+%d",
			rep.TInfNs, rep.CPDiscNs, rep.CPWaitNs, rep.CPExecNs)
	}
	retained := p.TakeRetained()
	if len(retained) != 4 {
		t.Fatalf("retained %d tasks, want 4", len(retained))
	}
	exact, err := ExactCP(retained)
	if err != nil {
		t.Fatalf("ExactCP: %v", err)
	}
	if exact.TInfNs != rep.TInfNs || exact.CPLen != rep.CPLen {
		t.Fatalf("online (Tinf %d, len %d) != exact (Tinf %d, len %d)",
			rep.TInfNs, rep.CPLen, exact.TInfNs, exact.CPLen)
	}
	if exact.CPDiscNs != rep.CPDiscNs || exact.CPWaitNs != rep.CPWaitNs || exact.CPExecNs != rep.CPExecNs {
		t.Fatalf("phase split disagrees: online %d/%d/%d exact %d/%d/%d",
			rep.CPDiscNs, rep.CPWaitNs, rep.CPExecNs,
			exact.CPDiscNs, exact.CPWaitNs, exact.CPExecNs)
	}

	var sb strings.Builder
	rep.WriteText(&sb)
	for _, want := range []string{"window 1:", "Tinf", "zero-cost discovery", "critical path"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("WriteText missing %q:\n%s", want, sb.String())
		}
	}

	// A drained window with nothing new observed publishes no report.
	if rep2 := p.EndWindow(1); rep2 != nil {
		t.Fatalf("empty window published a report: %+v", rep2)
	}
	if p.Last() != rep {
		t.Fatalf("Last() lost the previous window's report")
	}
}

// TestChainPathTruncation drives a strict N-task chain with a small
// PathMax: the report must keep the full path length while rendering
// only the entries nearest the sink, and out-of-range slots must route
// through the external slot without losing tasks.
func TestChainPathTruncation(t *testing.T) {
	const n, pathMax = 10, 4
	p := New(2, nil, Options{Precise: true, PathMax: pathMax})
	defer p.Close()
	var ready []*graph.Task
	g := graph.NewWithConfig(graph.Config{
		OnReady:  func(tk *graph.Task) { ready = append(ready, tk) },
		CPath:    true,
		CPathNow: p.Now,
	})
	const k = graph.Key(7)
	labels := make([]string, n)
	for i := 0; i < n; i++ {
		labels[i] = string(rune('a' + i))
		g.Submit(labels[i], []graph.Dep{{Key: k, Type: graph.InOut}}, nil, nil)
	}
	delays := map[string]time.Duration{}
	for _, l := range labels {
		delays[l] = 200 * time.Microsecond
	}
	if got := driveSerial(g, p, &ready, 99 /* out of range: external slot */, delays); got != n {
		t.Fatalf("executed %d tasks, want %d", got, n)
	}
	rep := p.EndWindow(1)
	if rep == nil || rep.Tasks != n {
		t.Fatalf("report: %+v", rep)
	}
	if rep.CPLen != n {
		t.Fatalf("chain cp-len = %d, want %d", rep.CPLen, n)
	}
	if len(rep.Path) != pathMax {
		t.Fatalf("rendered %d path entries, want %d", len(rep.Path), pathMax)
	}
	if rep.Path[pathMax-1].Label != labels[n-1] {
		t.Fatalf("truncated path must end at the sink, got %+v", rep.Path)
	}
	if rep.Path[0].Label != labels[n-pathMax] {
		t.Fatalf("truncated path must keep the entries nearest the sink, got %+v", rep.Path)
	}
}

// TestExactCPEmpty documents the trivial-input behavior.
func TestExactCPEmpty(t *testing.T) {
	res, err := ExactCP(nil)
	if err != nil || res.TInfNs != 0 || res.CPLen != 0 {
		t.Fatalf("ExactCP(nil) = %+v, %v", res, err)
	}
}
