package cpath

import (
	"fmt"

	"taskdep/internal/graph"
)

// ExactResult is the offline longest-path computation's answer.
type ExactResult struct {
	TInfNs   int64
	CPDiscNs int64
	CPWaitNs int64
	CPExecNs int64
	CPLen    int // tasks on the exact critical path
}

// ExactCP computes the exact weighted longest path over the given
// finished tasks by explicit topological dynamic programming — the
// offline reference the online release-time fold must reproduce. It
// uses the SAME recorded stamps and the same clamped phase derivation
// as the online fold, so on a self-contained window (every in-window
// predecessor edge connects tasks of the set — true for a single
// taskwait region or one compiled replay iteration) the TInf it
// returns must equal the online report exactly, nanosecond for
// nanosecond, whatever clock mode produced the stamps. Edges to tasks
// outside the set are ignored, matching the fold (pruned edges never
// fold either).
//
// Every task must be terminal. Returns an error if the edge set over
// the tasks is cyclic (which would mean a corrupted graph).
func ExactCP(tasks []*graph.Task) (ExactResult, error) {
	var res ExactResult
	n := len(tasks)
	if n == 0 {
		return res, nil
	}
	idx := make(map[*graph.Task]int, n)
	for i, t := range tasks {
		idx[t] = i
	}
	// In-set adjacency and indegrees from the recorded successor lists.
	succs := make([][]int32, n)
	indeg := make([]int32, n)
	for i, t := range tasks {
		for _, s := range t.Successors() {
			if j, ok := idx[s]; ok {
				succs[i] = append(succs[i], int32(j))
				indeg[j]++
			}
		}
	}
	// Kahn topological order with the longest-path DP fused in. While
	// node j is unfinished, state[j] holds the best completed
	// predecessor path into j (zero for roots); when j is popped, its
	// own weights are added, making state[j] the longest path ENDING at
	// j — exactly cp[j] = own(j) + max over preds of cp[p].
	type dp struct {
		total, disc, wait, exec int64
		hops                    int
	}
	state := make([]dp, n)
	order := make([]int32, 0, n)
	for i := range tasks {
		if indeg[i] == 0 {
			order = append(order, int32(i))
		}
	}
	for k := 0; k < len(order); k++ {
		i := order[k]
		d, w, e := tasks[i].PhaseNs()
		s := &state[i]
		s.total += d + w + e
		s.disc += d
		s.wait += w
		s.exec += e
		s.hops++
		for _, j := range succs[i] {
			if sj := &state[j]; s.total > sj.total {
				*sj = *s
			}
			if indeg[j]--; indeg[j] == 0 {
				order = append(order, j)
			}
		}
	}
	if len(order) != n {
		return res, fmt.Errorf("cpath: exact longest-path found a cycle (%d of %d tasks ordered)", len(order), n)
	}
	// The exact span is the maximum over all tasks (path weight is
	// monotone along edges, so any task may realize it).
	best := 0
	for i := range state {
		if state[i].total > state[best].total {
			best = i
		}
	}
	b := state[best]
	res.TInfNs, res.CPDiscNs, res.CPWaitNs, res.CPExecNs = b.total, b.disc, b.wait, b.exec
	res.CPLen = b.hops
	return res, nil
}
