// Package cpath is the online critical-path profiler: per-task phase
// attribution (discovery, ready-wait, execute, release), an O(1)
// release-time critical-path fold maintained by internal/graph, and a
// what-if projector for the paper's discovery-impact question — "is TDG
// discovery on the critical path, and by how much would eliminating it
// shrink makespan?" — answered live instead of by offline trace
// analysis.
//
// The division of labor: graph owns the per-task stamps and the
// cp[t] = own(t) + max_pred cp[p] fold (it is the only layer that
// walks every predecessor->successor edge at release time); this
// package owns the clock the stamps read, the per-slot aggregation of
// finished tasks (same single-writer sharding discipline as
// internal/obs), window reports with T1/T-infinity/parallelism and the
// discovery share of the critical path, the Brent-bound what-if
// projections, and an offline exact longest-path cross-check used by
// tests and the cpath benchmark gate.
package cpath

import (
	"sync/atomic"
	"time"
)

// DefaultTick is the cached-clock refresh period. 50us keeps stamp
// quantization far below any task worth attributing individually while
// the updater goroutine stays at ~20k wakes/s; consecutive same-slot
// quantization errors telescope (a task's end stamp is its successor's
// start stamp), so window and path totals stay accurate to about one
// tick regardless of task count.
const DefaultTick = 50 * time.Microsecond

// Clock is the profiler's monotonic nanosecond clock. In the default
// cached mode an updater goroutine periodically stores a precise
// time.Since reading into an atomic, so hot-path reads are a single
// uncontended load (~1 ns) instead of a ~35-60 ns time syscall — the
// difference between a ~3% and a ~50% profiler overhead at the
// grain-0 drain's 112 ns/task. Precise mode reads the real clock on
// every call, for tests and fine-grained attribution of long tasks.
type Clock struct {
	base    time.Time
	cached  atomic.Int64
	precise bool
	stop    chan struct{}
	done    chan struct{}
}

// NewClock starts a clock. tick <= 0 selects DefaultTick; precise mode
// starts no updater.
func NewClock(precise bool, tick time.Duration) *Clock {
	c := &Clock{base: time.Now(), precise: precise}
	if precise {
		return c
	}
	if tick <= 0 {
		tick = DefaultTick
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go c.run(tick)
	return c
}

func (c *Clock) run(tick time.Duration) {
	defer close(c.done)
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-tk.C:
			// The stored value is always a precise reading; only the
			// refresh frequency is coarse.
			c.cached.Store(int64(time.Since(c.base)))
		case <-c.stop:
			return
		}
	}
}

// Now returns monotonic nanoseconds since the clock started. Cached
// mode: one atomic load, value at most one tick old. Monotone
// non-decreasing in both modes.
func (c *Clock) Now() int64 {
	if c.precise {
		return int64(time.Since(c.base))
	}
	return c.cached.Load()
}

// CachedRef exposes the cached cell for zero-call hot-path reads
// (graph.Config.CPathCached); nil in precise mode, where every read
// must go through Now.
func (c *Clock) CachedRef() *atomic.Int64 {
	if c.precise {
		return nil
	}
	return &c.cached
}

// Stop terminates the updater goroutine (no-op in precise mode). The
// clock remains readable afterwards, frozen at its last value.
func (c *Clock) Stop() {
	if c.stop != nil {
		close(c.stop)
		<-c.done
		c.stop = nil
	}
}
