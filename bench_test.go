// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the index and EXPERIMENTS.md for the
// paper-vs-measured record). Each benchmark runs its experiment end to
// end and reports the headline quantities as custom metrics; run the
// cmd/ tools for the full printed series.
//
//	go test -bench=. -benchmem -benchtime=1x
package taskdep_test

import (
	"os"
	"sync"
	"testing"

	"taskdep/experiments"
	"taskdep/internal/graph"
	"taskdep/internal/sched"
	"taskdep/internal/trace"
)

// verbose tables are emitted when BENCH_PRINT=1.
var benchPrint = os.Getenv("BENCH_PRINT") == "1"

// benchIntranode returns the standard reduced-scale intranode config.
func benchIntranode() experiments.IntranodeConfig {
	return experiments.DefaultIntranode()
}

// BenchmarkFig1IntraNodeLULESH: execution vs discovery time across the
// TPL sweep with the baseline (non-optimized) discovery, plus the
// parallel-for reference (paper Fig. 1; panels of Fig. 2 derive from the
// same run).
func BenchmarkFig1IntraNodeLULESH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig1(benchIntranode(), false)
		best := res.Points[res.Best]
		b.ReportMetric(res.ParallelFor.Makespan/best.Makespan, "speedup-vs-for")
		b.ReportMetric(best.Discovery, "discovery-s")
		b.ReportMetric(float64(best.TPL), "best-TPL")
		if benchPrint {
			res.Print(os.Stdout, "Fig 1/2: intra-node LULESH (baseline discovery)")
		}
	}
}

// BenchmarkFig2Breakdown: the detailed panels (tasks/edges, per-task
// times, breakdown, inflation, cache misses, stalls) at the finest and
// best grains.
func BenchmarkFig2Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig1(benchIntranode(), false)
		fine := res.Points[len(res.Points)-1]
		b.ReportMetric(float64(fine.Tasks), "tasks-finest")
		b.ReportMetric(float64(fine.Edges), "edges-finest")
		b.ReportMetric(fine.Inflation, "work-inflation-finest")
		b.ReportMetric(float64(fine.Cache.L3CM), "L3CM-finest")
		b.ReportMetric(fine.Cache.TotalStalls, "stall-cycles-finest")
	}
}

// BenchmarkTable1DiscoveryOverlap: normal vs non-overlapped discovery at
// best and finest TPL (paper Table 1).
func BenchmarkTable1DiscoveryOverlap(b *testing.B) {
	c := benchIntranode()
	for i := 0; i < b.N; i++ {
		res := experiments.RunTable1(c, 384, 3072)
		fineNormal, fineNon := res.Rows[1], res.Rows[2]
		b.ReportMetric(fineNormal.Work/fineNon.Work, "work-reduction-x")
		b.ReportMetric(float64(fineNormal.L3CM)/float64(fineNon.L3CM), "L3CM-reduction-x")
		b.ReportMetric(fineNon.Makespan/fineNormal.Makespan, "total-slowdown-x")
		if benchPrint {
			res.Print(os.Stdout)
		}
	}
}

// BenchmarkTable2OptCrossing: the optimization crossing with genuinely
// measured discovery times (paper Table 2).
func BenchmarkTable2OptCrossing(b *testing.B) {
	c := benchIntranode()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable2(c, 384)
		var none, abc, p experiments.Table2Row
		for _, r := range rows {
			switch r.Label {
			case "none":
				none = r
			case "(a)+(b)+(c)":
				abc = r
			case "(a)+(b)+(c)+(p)":
				p = r
			}
		}
		b.ReportMetric(float64(none.Edges)/float64(abc.Edges), "edge-reduction-x")
		b.ReportMetric(none.Discovery/abc.Discovery, "discovery-speedup-abc")
		b.ReportMetric(none.Discovery/p.Discovery, "discovery-speedup-p")
		b.ReportMetric(p.FirstIter/p.ReplayIter, "first-vs-replay-x")
		if benchPrint {
			experiments.PrintTable2(os.Stdout, rows)
		}
	}
}

// BenchmarkFig6Optimized: the sweep with every optimization enabled
// (paper Fig. 6) against the parallel-for reference and the
// non-optimized best.
func BenchmarkFig6Optimized(b *testing.B) {
	c := benchIntranode()
	for i := 0; i < b.N; i++ {
		opt := experiments.RunFig1(c, true)
		non := experiments.RunFig1(c, false)
		bestOpt := opt.Points[opt.Best]
		bestNon := non.Points[non.Best]
		b.ReportMetric(opt.ParallelFor.Makespan/bestOpt.Makespan, "speedup-vs-for")
		b.ReportMetric(bestNon.Makespan/bestOpt.Makespan, "speedup-vs-nonopt")
		b.ReportMetric(float64(bestOpt.TPL)/float64(bestNon.TPL), "best-TPL-shift-x")
		if benchPrint {
			opt.Print(os.Stdout, "Fig 6: intra-node LULESH (optimizations enabled)")
		}
	}
}

// BenchmarkMETG: the §3.3 Minimum Effective Task Granularity report.
func BenchmarkMETG(b *testing.B) {
	c := benchIntranode()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMETG(c)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.METG95*1e6, "METG95-us")
	}
}

// BenchmarkFig7Distributed: the 27-rank (3x3x3) LULESH sweep with and
// without TDG optimizations: time breakdown, communication time and
// overlap ratio on the center rank (paper Fig. 7, 125 ranks).
func BenchmarkFig7Distributed(b *testing.B) {
	c := experiments.DefaultDistributed()
	for i := 0; i < b.N; i++ {
		opt := experiments.RunFig7(c, true)
		non := experiments.RunFig7(c, false)
		bo, bn := opt.Points[opt.Best], non.Points[non.Best]
		b.ReportMetric(opt.ParallelFor.Makespan/bo.Makespan, "opt-speedup-vs-for")
		b.ReportMetric(bn.Makespan/bo.Makespan, "opt-speedup-vs-nonopt")
		b.ReportMetric(100*bo.OverlapRatio, "opt-overlap-pct")
		b.ReportMetric(100*bn.OverlapRatio, "nonopt-overlap-pct")
		if benchPrint {
			opt.Print(os.Stdout)
			non.Print(os.Stdout)
		}
	}
}

// BenchmarkFig8Gantt: generates the Gantt charts of the profiled rank
// (paper Fig. 8); the persistent barrier shows as per-iteration
// alignment.
func BenchmarkFig8Gantt(b *testing.B) {
	c := experiments.DefaultDistributed()
	c.Iters = 3
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig8(c, 128)
		b.ReportMetric(float64(len(res.Optimized)), "boxes-optimized")
		b.ReportMetric(float64(len(res.NonOptimized)), "boxes-nonopt")
		if benchPrint {
			g := &trace.Gantt{Tasks: res.Optimized}
			g.WriteASCII(os.Stdout, 120)
		}
	}
}

// BenchmarkTaskwaitCost: explicit taskwait around communication
// sequences vs fine MPI/TDG integration (paper §4.1: +7%).
func BenchmarkTaskwaitCost(b *testing.B) {
	c := experiments.DefaultDistributed()
	c.Grid = [3]int{2, 2, 2}
	for i := 0; i < b.N; i++ {
		res := experiments.RunTaskwaitCost(c, 256)
		b.ReportMetric(100*(res.WithTaskwait-res.NoTaskwait)/res.NoTaskwait, "taskwait-cost-pct")
	}
}

// BenchmarkTable3Scaling: weak and strong scaling (paper Table 3,
// 8..4096 ranks; reduced to <=216 here — cmd/scaling -big goes larger).
func BenchmarkTable3Scaling(b *testing.B) {
	c := experiments.DefaultScaling()
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTable3(c)
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(100*first.WeakTask/last.WeakTask, "weak-efficiency-pct")
		b.ReportMetric(last.WeakFor/last.WeakTask, "weak-speedup-vs-for")
		b.ReportMetric(first.StrongFor/first.StrongTask, "strong-speedup-small")
		b.ReportMetric(last.StrongFor/last.StrongTask, "strong-speedup-large")
		if benchPrint {
			experiments.PrintTable3(os.Stdout, rows)
		}
	}
}

// BenchmarkFig9HPCG: the HPCG sweep — breakdown, communication, overlap
// ratio, edges per task and grain (paper Fig. 9).
func BenchmarkFig9HPCG(b *testing.B) {
	c := experiments.DefaultHPCG()
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig9(c)
		best := res.Points[res.Best]
		b.ReportMetric(res.ParallelFor.Makespan/best.Makespan, "speedup-vs-for")
		b.ReportMetric(100*best.OverlapRatio, "overlap-pct")
		b.ReportMetric(best.GrainUS, "best-grain-us")
		if benchPrint {
			res.Print(os.Stdout)
		}
	}
}

// BenchmarkCholeskyPersistent: §4.4 — persistent-graph discovery
// speedup on repeated factorizations, neutral total time.
func BenchmarkCholeskyPersistent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCholesky(12, 48, 6, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.DiscoverySpeedup, "discovery-speedup-x")
		b.ReportMetric(100*(res.PersTotal-res.PlainTotal)/res.PlainTotal, "total-delta-pct")
		if benchPrint {
			res.Print(os.Stdout)
		}
	}
}

// BenchmarkThrottleAblation: the §5 throttling discussion — ready-task
// thresholds (GCC/LLVM) restrict the scheduler's TDG vision; MPC-OMP's
// total-task threshold bounds memory at little cost.
func BenchmarkThrottleAblation(b *testing.B) {
	c := benchIntranode()
	c.Iters = 2
	for i := 0; i < b.N; i++ {
		rows := experiments.RunThrottleAblation(c, 384)
		var unb, readyOnly, generous experiments.ThrottleRow
		for _, r := range rows {
			switch r.Label {
			case "unbounded":
				unb = r
			case "ready-only (GCC/LLVM-style)":
				readyOnly = r
			case "total, generous (MPC-OMP)":
				generous = r
			}
		}
		b.ReportMetric(readyOnly.Makespan/unb.Makespan, "ready-throttle-slowdown-x")
		b.ReportMetric(generous.Makespan/unb.Makespan, "total-throttle-slowdown-x")
		b.ReportMetric(float64(unb.PeakLive), "peak-live-unbounded")
		if benchPrint {
			experiments.PrintThrottleAblation(os.Stdout, rows)
		}
	}
}

// BenchmarkPolicyAblation: depth-first vs breadth-first scheduling at
// the optimized sweet spot (the mechanism behind Fig. 2's cache
// panels).
func BenchmarkPolicyAblation(b *testing.B) {
	c := benchIntranode()
	c.Iters = 2
	for i := 0; i < b.N; i++ {
		rows := experiments.RunPolicyAblation(c, 384)
		df, bf := rows[0], rows[1]
		b.ReportMetric(bf.Makespan/df.Makespan, "depth-first-speedup-x")
		b.ReportMetric(float64(bf.L3CM)/float64(df.L3CM), "L3CM-ratio-bf-vs-df")
		if benchPrint {
			experiments.PrintPolicyAblation(os.Stdout, rows)
		}
	}
}

// Executor hot-path microbenchmarks (run with -benchmem): the raw cost
// of the Chase–Lev deque operations and the park/wake round-trip that
// the `tdgbench -exp executor` drain measurement is built from.

// BenchmarkExecutorPushPop: owner-side LIFO push+pop on the lock-free
// deque — the per-task queue cost of a depth-first chain.
func BenchmarkExecutorPushPop(b *testing.B) {
	var d sched.WSDeque
	tk := &graph.Task{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushTop(tk)
		d.PopTop()
	}
}

// BenchmarkExecutorSteal: uncontended steal (push on the owner end,
// claim on the thief end) — the cost of migrating one task.
func BenchmarkExecutorSteal(b *testing.B) {
	var d sched.WSDeque
	tk := &graph.Task{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushTop(tk)
		d.Steal()
	}
}

// BenchmarkExecutorBatchRelease: batch publication of an 8-task release
// set followed by owner pops — the completion path's amortized shape.
func BenchmarkExecutorBatchRelease(b *testing.B) {
	var d sched.WSDeque
	ts := make([]*graph.Task, 8)
	for i := range ts {
		ts[i] = &graph.Task{}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.PushTopAll(ts)
		for k := 0; k < len(ts); k++ {
			d.PopTop()
		}
	}
}

// BenchmarkExecutorParkWake: full park/wake round-trip between a waker
// and a parked worker slot (announce, re-check, block, token delivery).
func BenchmarkExecutorParkWake(b *testing.B) {
	s := sched.New(sched.DepthFirst, 1)
	ready := make(chan struct{}, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			snap := s.PrePark(0)
			ready <- struct{}{}
			if s.Seq() == snap {
				s.Park(0)
			} else {
				s.CancelPark(0)
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		<-ready
		s.Kick()
	}
	b.StopTimer()
	close(stop)
	s.Kick() // release the parker if it re-parked before seeing stop
	wg.Wait()
}

// BenchmarkEagerAblation: the eager/rendezvous protocol switch on the
// distributed configuration.
func BenchmarkEagerAblation(b *testing.B) {
	c := experiments.DefaultDistributed()
	c.Grid = [3]int{2, 2, 2}
	for i := 0; i < b.N; i++ {
		rows := experiments.RunEagerAblation(c, 256)
		b.ReportMetric(rows[0].CommTime/rows[len(rows)-1].CommTime, "rdv-vs-eager-comm-x")
		if benchPrint {
			experiments.PrintEagerAblation(os.Stdout, rows)
		}
	}
}
